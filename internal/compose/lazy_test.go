package compose

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"protoquot/internal/spec"
)

// assertLazyMatchesIndexed saturates a demand-driven composition and asserts
// it is name-isomorphic to the fused eager sweep over the same components.
// Lazy state ids follow demand order rather than BFS order, so the
// comparison goes through namedListing, which is invariant under
// renumbering.
func assertLazyMatchesIndexed(t *testing.T, comps ...*spec.Spec) *Lazy {
	t.Helper()
	x, err := IndexedMany(comps...)
	if err != nil {
		t.Fatalf("IndexedMany: %v", err)
	}
	lz, err := LazyMany(comps...)
	if err != nil {
		t.Fatalf("LazyMany: %v", err)
	}
	// namedListing re-reads NumStates every iteration and ExtEdges/IntEdges
	// expand on demand, so walking the listing saturates the product.
	if got, want := namedListing(lz), namedListing(x); got != want {
		t.Fatalf("lazy composition differs from indexed sweep\n--- lazy ---\n%.2000s\n--- indexed ---\n%.2000s", got, want)
	}
	exp, disc, _ := lz.ExpansionStats()
	if exp != disc || disc != x.NumStates() {
		t.Fatalf("saturated lazy stats = %d expanded / %d discovered, want both = %d reachable",
			exp, disc, x.NumStates())
	}
	// The materialized Spec must agree with the Lazy view it came from.
	ls, err := lz.Spec()
	if err != nil {
		t.Fatalf("Lazy.Spec: %v", err)
	}
	if got, want := namedListing(ls), namedListing(lz); got != want {
		t.Fatalf("materialized Spec differs from Lazy view\n--- spec ---\n%.2000s\n--- lazy ---\n%.2000s", got, want)
	}
	return lz
}

func TestLazyMatchesIndexedBasic(t *testing.T) {
	snd := spec.NewBuilder("snd")
	snd.Init("s0").Ext("s0", "acc", "s1").Ext("s1", "-x", "s0")
	rcv := spec.NewBuilder("rcv")
	rcv.Init("r0").Ext("r0", "+y", "r1").Ext("r1", "del", "r0")
	cases := [][]*spec.Spec{
		{snd.MustBuild()},
		{snd.MustBuild(), chanSpec("C", "-x", "+x")},
		{snd.MustBuild(), chanSpec("C", "-x", "+x"), chanSpec("D", "-y", "+y"), rcv.MustBuild()},
	}
	for _, comps := range cases {
		lz := assertLazyMatchesIndexed(t, comps...)
		if lz.Init() != 0 {
			t.Errorf("lazy init = %d, want 0", lz.Init())
		}
	}
}

// TestLazyMatchesIndexedRandom is the differential sweep over random
// component systems, mirroring TestIndexedMatchesManyRandom.
func TestLazyMatchesIndexedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(3)
		comps := make([]*spec.Spec, k)
		for i := range comps {
			b := spec.NewBuilder(fmt.Sprintf("m%d", i))
			n := 2 + rng.Intn(3)
			for s := 0; s < n; s++ {
				b.State(fmt.Sprintf("q%d", s))
			}
			b.Init("q0")
			for s := 0; s < n; s++ {
				if rng.Intn(2) == 0 {
					b.Ext(fmt.Sprintf("q%d", s), spec.Event(fmt.Sprintf("p%d.%d", i, s)), fmt.Sprintf("q%d", rng.Intn(n)))
				}
				if rng.Intn(3) == 0 {
					b.Int(fmt.Sprintf("q%d", s), fmt.Sprintf("q%d", rng.Intn(n)))
				}
			}
			if i > 0 {
				b.Ext("q0", spec.Event(fmt.Sprintf("link%d", i)), fmt.Sprintf("q%d", rng.Intn(n)))
			}
			if i < k-1 {
				b.Ext(fmt.Sprintf("q%d", rng.Intn(n)), spec.Event(fmt.Sprintf("link%d", i+1)), "q0")
			}
			comps[i] = b.MustBuild()
		}
		assertLazyMatchesIndexed(t, comps...)
	}
}

func TestLazyManyRejectsBadInputs(t *testing.T) {
	mk := func(name string) *spec.Spec {
		b := spec.NewBuilder(name)
		b.Init("s").Ext("s", "shared", "s")
		return b.MustBuild()
	}
	if _, err := LazyMany(mk("a"), mk("b"), mk("c")); err == nil {
		t.Fatal("expected pairwise-interface error")
	}
	if _, err := LazyMany(); err == nil {
		t.Fatal("expected error for empty component list")
	}
}

// TestLazyPeekRowsDoesNotExpand pins the non-expanding read: PeekRows on a
// discovered-but-unexpanded state reports absence and leaves the expansion
// counter untouched.
func TestLazyPeekRowsDoesNotExpand(t *testing.T) {
	snd := spec.NewBuilder("snd")
	snd.Init("s0").Ext("s0", "acc", "s1").Ext("s1", "-x", "s0")
	lz := MustLazyMany(snd.MustBuild(), chanSpec("C", "-x", "+x"))
	if _, _, ok := lz.PeekRows(lz.Init()); ok {
		t.Fatal("init state reported expanded before any Rows call")
	}
	ext, intl := lz.Rows(lz.Init())
	exp, disc, _ := lz.ExpansionStats()
	if exp != 1 || disc < 2 {
		t.Fatalf("after one Rows call: expanded=%d discovered=%d, want 1 and ≥2", exp, disc)
	}
	for st := 1; st < disc; st++ {
		if _, _, ok := lz.PeekRows(spec.State(st)); ok {
			t.Fatalf("frontier state %d reported expanded", st)
		}
	}
	if exp2, _, _ := lz.ExpansionStats(); exp2 != 1 {
		t.Fatalf("PeekRows expanded states: counter went 1 → %d", exp2)
	}
	// Rows must be idempotent and stable.
	ext2, intl2 := lz.Rows(lz.Init())
	if &ext[0] != &ext2[0] || len(intl) != len(intl2) {
		t.Fatal("repeated Rows returned a different published row")
	}
}

// TestLazyConcurrentRows hammers concurrent first-demand expansion: many
// goroutines racing to expand overlapping frontiers must agree on every row
// (the race detector checks the publication protocol).
func TestLazyConcurrentRows(t *testing.T) {
	comps := []*spec.Spec{}
	prev := ""
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("n%d", i)
		b := spec.NewBuilder(name)
		b.Init("u").Ext("u", spec.Event("go"+name), "v").Int("v", "u")
		if prev != "" {
			b.Ext("u", spec.Event("l"+prev), "v")
		}
		if i < 4 {
			b.Ext("v", spec.Event("l"+name), "u")
		}
		prev = name
		comps = append(comps, b.MustBuild())
	}
	lz := MustLazyMany(comps...)
	ref := MustIndexedMany(comps...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				n := lz.NumStates()
				st := spec.State(rng.Intn(n))
				ext, intl := lz.Rows(st)
				// Re-read: published rows must be identical slices.
				ext2, intl2 := lz.Rows(st)
				if len(ext) != len(ext2) || len(intl) != len(intl2) {
					t.Errorf("row of %d changed between reads", st)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got, want := namedListing(lz), namedListing(ref); got != want {
		t.Fatalf("lazy product after concurrent hammering differs from indexed\n--- lazy ---\n%.2000s\n--- indexed ---\n%.2000s", got, want)
	}
}
