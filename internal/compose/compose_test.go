package compose

import (
	"math/rand"
	"sort"
	"testing"

	"protoquot/internal/spec"
	"protoquot/internal/specgen"
)

func build(t *testing.T, b *spec.Builder) *spec.Spec {
	t.Helper()
	s, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

// sender/receiver rendezvous on "msg"; "go" and "done" stay external.
func senderReceiver(t *testing.T) (*spec.Spec, *spec.Spec) {
	sb := spec.NewBuilder("snd")
	sb.Init("s0").Ext("s0", "go", "s1").Ext("s1", "msg", "s0")
	rb := spec.NewBuilder("rcv")
	rb.Init("r0").Ext("r0", "msg", "r1").Ext("r1", "done", "r0")
	return build(t, sb), build(t, rb)
}

func TestPairAlphabetIsSymmetricDifference(t *testing.T) {
	s, r := senderReceiver(t)
	c := Pair(s, r)
	al := c.Alphabet()
	want := []spec.Event{"done", "go"}
	if len(al) != 2 || al[0] != want[0] || al[1] != want[1] {
		t.Errorf("alphabet = %v, want %v", al, want)
	}
	if c.HasEvent("msg") {
		t.Error("shared event msg should be hidden")
	}
}

func TestPairSynchronizesSharedEvents(t *testing.T) {
	s, r := senderReceiver(t)
	c := Pair(s, r)
	// Behaviour: go, then internal sync (msg), then done, repeat.
	if !c.HasTrace([]spec.Event{"go", "done"}) {
		t.Error("go·done should be a trace (msg synchronizes internally)")
	}
	if c.HasTrace([]spec.Event{"done"}) {
		t.Error("done before the rendezvous should be impossible")
	}
	if !c.HasTrace([]spec.Event{"go", "go"}) {
		t.Error("go·go should be a trace: the rendezvous can happen silently in between")
	}
	if c.HasTrace([]spec.Event{"go", "done", "done"}) {
		t.Error("a second done without a second rendezvous should be impossible")
	}
	if c.NumInternalTransitions() == 0 {
		t.Error("synchronized event should appear as an internal transition")
	}
}

func TestPairBlocksWhenNotMutuallyEnabled(t *testing.T) {
	// a offers "x" only; b never offers "x": composite has no moves.
	ab := spec.NewBuilder("a")
	ab.Init("a0").Ext("a0", "x", "a1")
	bb := spec.NewBuilder("b")
	bb.Init("b0").Ext("b1", "x", "b0") // x only from unreachable b1
	c := Pair(build(t, ab), build(t, bb))
	if c.NumExternalTransitions() != 0 || c.NumInternalTransitions() != 0 {
		t.Errorf("expected deadlocked composite, got %s", c.Format())
	}
}

func TestPairInterleavesDistinctEvents(t *testing.T) {
	ab := spec.NewBuilder("a")
	ab.Init("a0").Ext("a0", "x", "a1")
	bb := spec.NewBuilder("b")
	bb.Init("b0").Ext("b0", "y", "b1")
	c := Pair(build(t, ab), build(t, bb))
	for _, tr := range [][]spec.Event{{"x", "y"}, {"y", "x"}} {
		if !c.HasTrace(tr) {
			t.Errorf("interleaving %v missing", tr)
		}
	}
}

func TestPairPropagatesInternalMoves(t *testing.T) {
	ab := spec.NewBuilder("a")
	ab.Init("a0").Int("a0", "a1").Ext("a1", "x", "a0")
	bb := spec.NewBuilder("b")
	bb.Init("b0").Ext("b0", "y", "b0")
	c := Pair(build(t, ab), build(t, bb))
	if !c.HasTrace([]spec.Event{"x"}) {
		t.Error("internal move of component lost")
	}
	if c.NumInternalTransitions() == 0 {
		t.Error("component internal transition should appear in composite")
	}
}

func TestPairStateNames(t *testing.T) {
	s, r := senderReceiver(t)
	c := Pair(s, r)
	if _, ok := c.LookupState("s0" + StateSep + "r0"); !ok {
		t.Errorf("composite init name missing; states: %s", c.Format())
	}
}

func TestManyRejectsTripleSharedEvent(t *testing.T) {
	mk := func(name string) *spec.Spec {
		b := spec.NewBuilder(name)
		b.Init("q0").Ext("q0", "shared", "q0")
		return b.MustBuild()
	}
	if _, err := Many(mk("one"), mk("two"), mk("three")); err == nil {
		t.Error("Many should reject an event shared by three components")
	}
}

func TestManyComposesChain(t *testing.T) {
	// s -a-> relay -b-> r, pairwise interfaces {a}, {b}.
	sb := spec.NewBuilder("S")
	sb.Init("s0").Ext("s0", "a", "s0")
	rb := spec.NewBuilder("R")
	rb.Init("r0").Ext("r0", "a", "r1").Ext("r1", "b", "r0")
	tb := spec.NewBuilder("T")
	tb.Init("t0").Ext("t0", "b", "t0").Ext("t0", "out", "t0")
	c, err := Many(build(t, sb), build(t, rb), build(t, tb))
	if err != nil {
		t.Fatalf("Many: %v", err)
	}
	al := c.Alphabet()
	if len(al) != 1 || al[0] != "out" {
		t.Errorf("alphabet = %v, want [out]", al)
	}
	if !c.HasTrace([]spec.Event{"out"}) {
		t.Error("out should be a trace")
	}
}

func TestManyEmpty(t *testing.T) {
	if _, err := Many(); err == nil {
		t.Error("Many() with no components should fail")
	}
}

func TestHidden(t *testing.T) {
	s, r := senderReceiver(t)
	h := Hidden(s, r)
	if len(h) != 1 || h[0] != "msg" {
		t.Errorf("Hidden = %v, want [msg]", h)
	}
}

// Property: composition is commutative up to trace equivalence.
func TestPropPairCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := specgen.Config{MaxStates: 5, MaxEvents: 3, ExtDensity: 0.4, IntDensity: 0.3, Connected: true}
	for i := 0; i < 60; i++ {
		a := specgen.Random(rng, cfg)
		cfgB := cfg
		cfgB.EventPrefix = "f" // disjoint alphabets half the time
		if i%2 == 0 {
			cfgB.EventPrefix = "e" // shared alphabet the other half
		}
		b := specgen.Random(rng, cfgB)
		ab, ba := Pair(a, b), Pair(b, a)
		al := ab.Alphabet()
		if len(al) != len(ba.Alphabet()) {
			t.Fatalf("alphabets differ: %v vs %v", al, ba.Alphabet())
		}
		for j := 0; j < 25; j++ {
			tr := randomTraceOver(rng, al, 4)
			if ab.HasTrace(tr) != ba.HasTrace(tr) {
				t.Fatalf("commutativity violated on %v", tr)
			}
		}
	}
}

// Property: with disjoint alphabets, every interleaving of a trace of A and
// a trace of B is a trace of A‖B.
func TestPropPairInterleavingDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfgA := specgen.Config{MaxStates: 4, MaxEvents: 2, ExtDensity: 0.5, Connected: true, EventPrefix: "a"}
	cfgB := cfgA
	cfgB.EventPrefix = "b"
	for i := 0; i < 60; i++ {
		a := specgen.Random(rng, cfgA)
		b := specgen.Random(rng, cfgB)
		c := Pair(a, b)
		ta := specgen.RandomTrace(rng, a, 3)
		tb := specgen.RandomTrace(rng, b, 3)
		// One particular interleaving: ta then tb.
		tr := append(append([]spec.Event{}, ta...), tb...)
		if !c.HasTrace(tr) {
			t.Fatalf("concatenation %v not a trace of composite", tr)
		}
	}
}

// Property: a trace of the composite, filtered to A's private events, is a
// trace of A "modulo hidden moves" — checked here for disjoint alphabets
// where it is exact projection.
func TestPropProjectionDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfgA := specgen.Config{MaxStates: 4, MaxEvents: 2, ExtDensity: 0.5, Connected: true, EventPrefix: "a"}
	cfgB := cfgA
	cfgB.EventPrefix = "b"
	for i := 0; i < 60; i++ {
		a := specgen.Random(rng, cfgA)
		b := specgen.Random(rng, cfgB)
		c := Pair(a, b)
		tr := specgen.RandomTrace(rng, c, 6)
		var pa []spec.Event
		for _, e := range tr {
			if a.HasEvent(e) {
				pa = append(pa, e)
			}
		}
		if !a.HasTrace(pa) {
			t.Fatalf("projection %v of composite trace %v not a trace of A", pa, tr)
		}
	}
}

func randomTraceOver(rng *rand.Rand, al []spec.Event, maxLen int) []spec.Event {
	if len(al) == 0 {
		return nil
	}
	tr := make([]spec.Event, rng.Intn(maxLen+1))
	for i := range tr {
		tr[i] = al[rng.Intn(len(al))]
	}
	return tr
}

// Sanity: alphabets of Pair results are sorted (an invariant other
// packages rely on).
func TestAlphabetSorted(t *testing.T) {
	s, r := senderReceiver(t)
	c := Pair(s, r)
	al := c.Alphabet()
	if !sort.SliceIsSorted(al, func(i, j int) bool { return al[i] < al[j] }) {
		t.Errorf("alphabet not sorted: %v", al)
	}
}
