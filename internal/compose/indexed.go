package compose

import (
	"fmt"
	"sort"
	"sync"

	"protoquot/internal/spec"
)

// Indexed is a compiled composite: the reachable product of n components,
// built in one fused breadth-first sweep over integer state and event ids
// and stored in flat CSR transition arrays. It implements the same
// read-side interface as *spec.Spec (core.Environment), so the deriver can
// consume it directly; composite state names — the string concatenations
// that dominate profiles of the eager path — are materialized lazily, only
// when a diagnostic, golden listing, or .dot rendering asks for one.
//
// Compared to the left fold Many, the fused sweep never builds intermediate
// pairwise products. That matters on open topologies (rings, meshes): an
// intermediate product is unconstrained until the last component closes the
// loop, so the fold can explode exponentially while the final reachable set
// stays small.
type Indexed struct {
	comps []*spec.Spec
	name  string

	events   []spec.Event // external (composite) alphabet, sorted
	eventSet map[spec.Event]struct{}

	// tuples holds each composite state's component-state ids, stride
	// len(comps); the composite init is state 0.
	tuples []int32

	// CSR adjacency, canonical order per state (edges by (Event, To),
	// internal targets ascending, both deduplicated).
	extOff []int32
	ext    []spec.ExtEdge
	intOff []int32
	intl   []spec.State

	// Lazily materialized composite names ("a|b|c"), guarded by nameMu.
	nameMu sync.Mutex
	names  []string
}

// IndexedMany builds the fused reachable composition of the components.
// Like Many it requires pairwise-disjoint interfaces (no event in three or
// more components); events shared by exactly two components synchronize and
// become internal, events owned by one remain external.
func IndexedMany(components ...*spec.Spec) (*Indexed, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("compose: no components")
	}
	tb, err := compileComponents(components)
	if err != nil {
		return nil, err
	}
	x := &Indexed{
		comps:    components,
		name:     foldName(components),
		events:   tb.external,
		eventSet: make(map[spec.Event]struct{}, len(tb.external)),
	}
	for _, e := range tb.external {
		x.eventSet[e] = struct{}{}
	}
	allEvents, partner, cext, cintl := tb.allEvents, tb.partner, tb.cext, tb.cintl

	// Tuple interning: the shared tiered scheme (intern.go) — paged
	// direct-mapped mixed-radix key, uint64 hash map, or string key.
	k := len(components)
	numStates := make([]int, k)
	for i, c := range components {
		numStates[i] = c.NumStates()
	}
	ti := newTupleIntern(tb, numStates)
	intern := func(tuple []int32) (int32, bool) {
		id, isNew := ti.intern(tuple, int32(len(x.tuples)/k))
		if isNew {
			x.tuples = append(x.tuples, tuple...)
		}
		return id, isNew
	}

	initTuple := make([]int32, k)
	for ci, c := range components {
		initTuple[ci] = int32(c.Init())
	}
	intern(initTuple)

	succ := make([]int32, k)
	x.extOff = append(x.extOff, 0)
	x.intOff = append(x.intOff, 0)
	// FIFO expansion: each composite state's edges are emitted contiguously,
	// building the CSR arrays in discovery order.
	for head := 0; head*k < len(x.tuples); head++ {
		tuple := x.tuples[head*k : head*k+k]
		extStart, intStart := len(x.ext), len(x.intl)
		step := func(ci int, to int32) (int32, bool) {
			copy(succ, tuple)
			succ[ci] = to
			return intern(succ)
		}
		for ci := range components {
			for _, t := range cintl[ci][tuple[ci]] {
				q, _ := step(ci, t)
				x.intl = append(x.intl, spec.State(q))
			}
			for _, ed := range cext[ci][tuple[ci]] {
				pj := partner[ci][ed.ev]
				if pj < 0 {
					q, _ := step(ci, ed.to)
					x.ext = append(x.ext, spec.ExtEdge{Event: allEvents[ed.ev], To: spec.State(q)})
					continue
				}
				if pj < int32(ci) {
					continue // emitted when the lower-indexed owner was scanned
				}
				for _, bd := range cext[pj][tuple[pj]] {
					if bd.ev != ed.ev {
						continue
					}
					copy(succ, tuple)
					succ[ci], succ[pj] = ed.to, bd.to
					q, _ := intern(succ)
					x.intl = append(x.intl, spec.State(q))
				}
			}
		}
		canonExt := x.ext[extStart:]
		sort.Slice(canonExt, func(i, j int) bool {
			if canonExt[i].Event != canonExt[j].Event {
				return canonExt[i].Event < canonExt[j].Event
			}
			return canonExt[i].To < canonExt[j].To
		})
		x.ext = x.ext[:extStart+len(dedupeExtEdges(canonExt))]
		canonInt := x.intl[intStart:]
		sort.Slice(canonInt, func(i, j int) bool { return canonInt[i] < canonInt[j] })
		x.intl = x.intl[:intStart+len(dedupeStates(canonInt))]
		x.extOff = append(x.extOff, int32(len(x.ext)))
		x.intOff = append(x.intOff, int32(len(x.intl)))
	}
	x.names = make([]string, x.NumStates())
	return x, nil
}

// MustIndexedMany is IndexedMany that panics on error.
func MustIndexedMany(components ...*spec.Spec) *Indexed {
	x, err := IndexedMany(components...)
	if err != nil {
		panic(err)
	}
	return x
}

// foldName reproduces Many's nested composite name, e.g. "((A||B)||C)".
func foldName(components []*spec.Spec) string {
	name := components[0].Name()
	for _, c := range components[1:] {
		name = fmt.Sprintf("(%s||%s)", name, c.Name())
	}
	return name
}

func dedupeExtEdges(edges []spec.ExtEdge) []spec.ExtEdge {
	if len(edges) == 0 {
		return edges
	}
	out := edges[:1]
	for _, ed := range edges[1:] {
		if ed != out[len(out)-1] {
			out = append(out, ed)
		}
	}
	return out
}

func dedupeStates(sts []spec.State) []spec.State {
	if len(sts) == 0 {
		return sts
	}
	out := sts[:1]
	for _, t := range sts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Name returns the composite name, matching what Many would produce.
func (x *Indexed) Name() string { return x.name }

// NumStates returns the number of reachable composite states.
func (x *Indexed) NumStates() int { return len(x.extOff) - 1 }

// Init returns the composite initial state (always 0: BFS root).
func (x *Indexed) Init() spec.State { return 0 }

// Alphabet returns the composite's external alphabet, sorted.
func (x *Indexed) Alphabet() []spec.Event { return x.events }

// HasEvent reports whether e is in the composite's external alphabet.
func (x *Indexed) HasEvent(e spec.Event) bool {
	_, ok := x.eventSet[e]
	return ok
}

// ExtEdges returns st's external transitions, sorted by (Event, To). The
// caller must not modify the returned slice.
func (x *Indexed) ExtEdges(st spec.State) []spec.ExtEdge {
	return x.ext[x.extOff[st]:x.extOff[st+1]]
}

// IntEdges returns st's internal successors, sorted ascending. The caller
// must not modify the returned slice.
func (x *Indexed) IntEdges(st spec.State) []spec.State {
	return x.intl[x.intOff[st]:x.intOff[st+1]]
}

// NumExternalTransitions returns the composite's |T|.
func (x *Indexed) NumExternalTransitions() int { return len(x.ext) }

// NumInternalTransitions returns the composite's |λ|.
func (x *Indexed) NumInternalTransitions() int { return len(x.intl) }

// Components returns the component list the composite was built from. The
// caller must not modify it.
func (x *Indexed) Components() []*spec.Spec { return x.comps }

// StateName materializes st's composite name ("a|b|c"), caching it. Safe
// for concurrent use; intended for diagnostics, not hot paths.
func (x *Indexed) StateName(st spec.State) string {
	x.nameMu.Lock()
	defer x.nameMu.Unlock()
	return x.stateNameLocked(st)
}

func (x *Indexed) stateNameLocked(st spec.State) string {
	if n := x.names[st]; n != "" {
		return n
	}
	k := len(x.comps)
	tuple := x.tuples[int(st)*k : int(st)*k+k]
	n := 0
	for ci, c := range x.comps {
		n += len(c.StateName(spec.State(tuple[ci])))
	}
	buf := make([]byte, 0, n+k-1)
	for ci, c := range x.comps {
		if ci > 0 {
			buf = append(buf, StateSep...)
		}
		buf = append(buf, c.StateName(spec.State(tuple[ci]))...)
	}
	x.names[st] = string(buf)
	return x.names[st]
}

// Spec materializes the composite as an eager *spec.Spec — every state
// named, all derived analyses run. This is the bridge to consumers that
// need the full Spec surface (Format, .dot rendering, sat checks); the
// derivation path never calls it.
func (x *Indexed) Spec() (*spec.Spec, error) {
	n := x.NumStates()
	d := spec.Dense{
		Name:       x.name,
		StateNames: make([]string, n),
		Init:       0,
		Alphabet:   x.events,
		Ext:        make([][]spec.ExtEdge, n),
		Int:        make([][]spec.State, n),
	}
	x.nameMu.Lock()
	for st := 0; st < n; st++ {
		d.StateNames[st] = x.stateNameLocked(spec.State(st))
	}
	x.nameMu.Unlock()
	for st := 0; st < n; st++ {
		d.Ext[st] = x.ExtEdges(spec.State(st))
		d.Int[st] = x.IntEdges(spec.State(st))
	}
	return spec.FromDense(d)
}
