// Demand-driven n-way composition: the product is expanded one state at a
// time, when a consumer first asks for that state's successors.
//
// IndexedMany materializes the whole reachable product up front with a BFS;
// on large systems most of that work is wasted, because the quotient
// algorithm's safety phase only ever walks the composite states reachable
// under the converter being built (the paper's h.r sets) — the standard
// on-the-fly construction argument from the reachability-analysis
// literature. Lazy keeps IndexedMany's compiled component tables and
// mixed-radix tuple interning but does no up-front sweep: a state's edge
// rows are computed inside Rows on first demand, under a mutex, and then
// published through an atomic flag so every later read is lock-free.
//
// State ids are assigned in demand order, so they depend on which consumer
// asked first — under a parallel deriver that is scheduling-dependent. The
// ids are private renamings of the same product, and everything the engine
// emits (converter structure, pair sets as sets, expansion counts) is
// invariant under renaming; only the raw ids themselves are not stable
// across runs.
package compose

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"protoquot/internal/spec"
)

// Edge is one external transition of a composite, with the event resolved
// to an index into the composite's external alphabet (Alphabet()). Keeping
// the event as a dense index lets the deriver consume composite edges with
// no per-edge map lookups; the external alphabet is sorted, so integer Ev
// order is event-name order.
type Edge struct {
	Ev int32 // index into Alphabet()
	To int32
}

// Rows are stored in fixed-location pages so a published row pointer never
// moves when the directory grows.
const (
	lazyPageShift = 10
	lazyPageSize  = 1 << lazyPageShift
)

type lazyRow struct {
	ext  []Edge
	intl []int32
	// done publishes the row: it is stored (with release semantics) only
	// after ext and intl are written, so any reader observing done=true
	// sees the completed row without taking the expansion lock.
	done atomic.Bool
}

type lazyPage [lazyPageSize]lazyRow

// Lazy is a demand-driven composite: the reachable product of n components,
// expanded state by state as consumers ask for successors. It implements
// core.Environment (like *Indexed), plus the demand-side surface the fused
// deriver uses: Rows, PeekRows, ExpansionStats.
//
// All methods are safe for concurrent use. Reads of already-expanded rows
// are lock-free; first-demand expansion serializes on an internal mutex.
type Lazy struct {
	comps []*spec.Spec
	name  string
	k     int
	tb    *compTables

	eventSet map[spec.Event]struct{}

	// dir is the grow-only page directory: the slice of page pointers is
	// cloned on append (under mu) and swapped in atomically, so readers
	// never see a partially grown directory.
	dir atomic.Pointer[[]*lazyPage]

	expanded   atomic.Int64
	discovered atomic.Int64
	expandNs   atomic.Int64

	// mu guards discovery and expansion: the tuple intern, the tuple
	// arena, the row arenas, the lazily materialized names, and the
	// scratch buffers.
	mu      sync.Mutex
	tuples  []int32
	ti      *tupleIntern
	arena   rowArena
	peakRow int64 // largest single published row, in bytes
	succBuf []int32
	extBuf  []Edge // expansion staging; published rows are arena sub-slices
	intlBuf []int32
	names   []string
}

// LazyMany builds the demand-driven composition of the components. It
// accepts exactly the component lists IndexedMany accepts (pairwise-disjoint
// interfaces) and represents the same machine; only the init state is
// interned up front.
func LazyMany(components ...*spec.Spec) (*Lazy, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("compose: no components")
	}
	tb, err := compileComponents(components)
	if err != nil {
		return nil, err
	}
	numStates := make([]int, len(components))
	for i, c := range components {
		numStates[i] = c.NumStates()
	}
	x := &Lazy{
		comps:    components,
		name:     foldName(components),
		k:        len(components),
		tb:       tb,
		eventSet: make(map[spec.Event]struct{}, len(tb.external)),
		ti:       newTupleIntern(tb, numStates),
		succBuf:  make([]int32, len(components)),
	}
	for _, e := range tb.external {
		x.eventSet[e] = struct{}{}
	}
	empty := []*lazyPage{}
	x.dir.Store(&empty)
	initTuple := make([]int32, x.k)
	for ci, c := range components {
		initTuple[ci] = int32(c.Init())
	}
	x.mu.Lock()
	x.internLocked(initTuple) // id 0 = composite init
	x.mu.Unlock()
	return x, nil
}

// MustLazyMany is LazyMany that panics on error.
func MustLazyMany(components ...*spec.Spec) *Lazy {
	x, err := LazyMany(components...)
	if err != nil {
		panic(err)
	}
	return x
}

// internLocked returns the id of the composite state with the given
// component tuple, discovering (and allocating a row slot for) it if new.
// Caller holds mu.
func (x *Lazy) internLocked(tuple []int32) int32 {
	id, isNew := x.ti.intern(tuple, int32(len(x.tuples)/x.k))
	if isNew {
		x.addLocked(tuple)
	}
	return id
}

func (x *Lazy) addLocked(tuple []int32) {
	id := int32(len(x.tuples) / x.k)
	// Grow the tuple spine and name table by explicit doubling: append's
	// ~1.25× growth curve for large slices costs ~5× the final size in
	// cumulative allocation, and at a million discovered states these two
	// slices dominate the composition's alloc_bytes. Readers that captured
	// a sub-slice keep the old backing array, exactly as under append.
	if need := len(x.tuples) + x.k; need > cap(x.tuples) {
		grown := make([]int32, len(x.tuples), max(2*cap(x.tuples), need, 256*x.k))
		copy(grown, x.tuples)
		x.tuples = grown
	}
	x.tuples = append(x.tuples, tuple...)
	if len(x.names) == cap(x.names) {
		grown := make([]string, len(x.names), max(2*cap(x.names), 256))
		copy(grown, x.names)
		x.names = grown
	}
	x.names = append(x.names, "")
	cur := *x.dir.Load()
	if need := (int(id) >> lazyPageShift) + 1; need > len(cur) {
		grown := make([]*lazyPage, need)
		copy(grown, cur)
		for i := len(cur); i < need; i++ {
			grown[i] = new(lazyPage)
		}
		x.dir.Store(&grown)
	}
	x.discovered.Store(int64(id) + 1)
}

func (x *Lazy) row(st int32) *lazyRow {
	dir := *x.dir.Load()
	return &dir[st>>lazyPageShift][st&(lazyPageSize-1)]
}

// Rows returns st's external edges (sorted by (Ev, To), deduplicated) and
// internal successors (sorted ascending, deduplicated), expanding the state
// on first demand. The caller must not modify the returned slices.
func (x *Lazy) Rows(st spec.State) ([]Edge, []int32) {
	r := x.row(int32(st))
	if r.done.Load() {
		return r.ext, r.intl
	}
	return x.expand(int32(st))
}

// PeekRows is Rows without the expansion: it returns the rows if st has
// already been expanded, and (nil, nil, false) otherwise.
func (x *Lazy) PeekRows(st spec.State) ([]Edge, []int32, bool) {
	r := x.row(int32(st))
	if r.done.Load() {
		return r.ext, r.intl, true
	}
	return nil, nil, false
}

func (x *Lazy) expand(st int32) ([]Edge, []int32) {
	x.mu.Lock()
	defer x.mu.Unlock()
	r := x.row(st)
	if r.done.Load() {
		return r.ext, r.intl
	}
	start := time.Now()
	// tuple aliases the arena as it is now; interning successors may grow
	// (reallocate) x.tuples, but the captured backing array keeps st's
	// values, which never change.
	tuple := x.tuples[int(st)*x.k : int(st)*x.k+x.k]
	ext := x.extBuf[:0]
	intl := x.intlBuf[:0]
	step := func(ci int, to int32) int32 {
		copy(x.succBuf, tuple)
		x.succBuf[ci] = to
		return x.internLocked(x.succBuf)
	}
	tb := x.tb
	for ci := range x.comps {
		for _, t := range tb.cintl[ci][tuple[ci]] {
			intl = append(intl, step(ci, t))
		}
		for _, ed := range tb.cext[ci][tuple[ci]] {
			pj := tb.partner[ci][ed.ev]
			if pj < 0 {
				q := step(ci, ed.to)
				ext = append(ext, Edge{Ev: tb.extIdx[ed.ev], To: q})
				continue
			}
			if pj < int32(ci) {
				continue // emitted when the lower-indexed owner was scanned
			}
			for _, bd := range tb.cext[pj][tuple[pj]] {
				if bd.ev != ed.ev {
					continue
				}
				copy(x.succBuf, tuple)
				x.succBuf[ci], x.succBuf[pj] = ed.to, bd.to
				intl = append(intl, x.internLocked(x.succBuf))
			}
		}
	}
	slices.SortFunc(ext, func(a, b Edge) int {
		if a.Ev != b.Ev {
			return int(a.Ev) - int(b.Ev)
		}
		return int(a.To) - int(b.To)
	})
	ext = dedupeEdges(ext)
	slices.Sort(intl)
	intl = dedupeInt32s(intl)
	// Publish arena-backed sub-slices; the staging buffers (and their
	// grown capacity) are reused by the next expansion, so they must never
	// leak to a caller. Arena chunks never move, so the published headers
	// stay valid for the Lazy's lifetime without per-row allocations.
	if len(ext) > 0 {
		r.ext = x.arena.allocEdges(len(ext))
		copy(r.ext, ext)
	}
	if len(intl) > 0 {
		r.intl = x.arena.allocInts(len(intl))
		copy(r.intl, intl)
	}
	x.extBuf, x.intlBuf = ext[:0], intl[:0]
	if rb := int64(len(ext))*8 + int64(len(intl))*4; rb > x.peakRow {
		x.peakRow = rb
	}
	r.done.Store(true) // publish: must follow the ext/intl writes
	x.expanded.Add(1)
	x.expandNs.Add(time.Since(start).Nanoseconds())
	return r.ext, r.intl
}

func dedupeEdges(edges []Edge) []Edge {
	if len(edges) == 0 {
		return edges
	}
	out := edges[:1]
	for _, ed := range edges[1:] {
		if ed != out[len(out)-1] {
			out = append(out, ed)
		}
	}
	return out
}

func dedupeInt32s(xs []int32) []int32 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, t := range xs[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// ExpansionStats reports how much of the product has been touched: states
// whose successor rows were computed, states discovered (expanded states
// plus the frontier they revealed), and total nanoseconds spent expanding.
func (x *Lazy) ExpansionStats() (expanded, discovered int, ns int64) {
	return int(x.expanded.Load()), int(x.discovered.Load()), x.expandNs.Load()
}

// MemStats reports the row-storage footprint: total bytes reserved by the
// row arenas and the size in bytes of the largest single published row
// (ext edges at 8 bytes each plus internal successors at 4). The deriver
// surfaces both through core.Metrics.
func (x *Lazy) MemStats() (arenaBytes, peakRowBytes int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.arena.bytes, x.peakRow
}

// Name returns the composite name, matching what Many would produce.
func (x *Lazy) Name() string { return x.name }

// NumStates returns the number of composite states discovered so far. It
// grows as the product is explored; unlike *Indexed it is not the full
// reachable count unless exploration has saturated.
func (x *Lazy) NumStates() int { return int(x.discovered.Load()) }

// Init returns the composite initial state (always 0: the first intern).
func (x *Lazy) Init() spec.State { return 0 }

// Alphabet returns the composite's external alphabet, sorted. Edge.Ev
// indexes this slice.
func (x *Lazy) Alphabet() []spec.Event { return x.tb.external }

// HasEvent reports whether e is in the composite's external alphabet.
func (x *Lazy) HasEvent(e spec.Event) bool {
	_, ok := x.eventSet[e]
	return ok
}

// ExtEdges returns st's external transitions, sorted by (Event, To),
// expanding st on demand. This is the core.Environment surface, used by
// diagnostics and by the eager deriver path; the fused path uses Rows. The
// caller must not modify the returned slice.
func (x *Lazy) ExtEdges(st spec.State) []spec.ExtEdge {
	ext, _ := x.Rows(st)
	out := make([]spec.ExtEdge, len(ext))
	for i, ed := range ext {
		out[i] = spec.ExtEdge{Event: x.tb.external[ed.Ev], To: spec.State(ed.To)}
	}
	return out
}

// IntEdges returns st's internal successors, sorted ascending, expanding st
// on demand. See ExtEdges.
func (x *Lazy) IntEdges(st spec.State) []spec.State {
	_, intl := x.Rows(st)
	out := make([]spec.State, len(intl))
	for i, t := range intl {
		out[i] = spec.State(t)
	}
	return out
}

// Components returns the component list the composite was built from. The
// caller must not modify it.
func (x *Lazy) Components() []*spec.Spec { return x.comps }

// StateName materializes st's composite name ("a|b|c"), caching it.
func (x *Lazy) StateName(st spec.State) string {
	x.mu.Lock()
	defer x.mu.Unlock()
	if n := x.names[st]; n != "" {
		return n
	}
	tuple := x.tuples[int(st)*x.k : int(st)*x.k+x.k]
	buf := make([]byte, 0, 8*x.k)
	for ci, c := range x.comps {
		if ci > 0 {
			buf = append(buf, StateSep...)
		}
		buf = append(buf, c.StateName(spec.State(tuple[ci]))...)
	}
	x.names[st] = string(buf)
	return x.names[st]
}

// Spec saturates the product (expanding every reachable state) and
// materializes it as an eager *spec.Spec. Like (*Indexed).Spec it is the
// bridge to consumers needing the full Spec surface; note the state
// numbering reflects this Lazy's demand order, not Indexed's BFS order.
func (x *Lazy) Spec() (*spec.Spec, error) {
	for st := 0; st < x.NumStates(); st++ { // NumStates grows as we expand
		x.Rows(spec.State(st))
	}
	n := x.NumStates()
	d := spec.Dense{
		Name:       x.name,
		StateNames: make([]string, n),
		Init:       0,
		Alphabet:   x.tb.external,
		Ext:        make([][]spec.ExtEdge, n),
		Int:        make([][]spec.State, n),
	}
	for st := 0; st < n; st++ {
		d.StateNames[st] = x.StateName(spec.State(st))
		d.Ext[st] = x.ExtEdges(spec.State(st))
		d.Int[st] = x.IntEdges(spec.State(st))
	}
	return spec.FromDense(d)
}
