package convrt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	rt "protoquot/internal/runtime"
	"protoquot/internal/spec"
)

// Config describes one load run: which compiled converter to execute, how
// many sessions, how hostile the wire is, and how much conformance
// checking to attach.
type Config struct {
	// Table is the compiled converter every session executes. Required.
	Table *Table
	// Reference, when non-nil, attaches a spec.TraceTracker to every
	// session: each executed event is replayed into the tracker and any
	// disagreement latches a conformance violation. It should be the
	// specification Table was compiled from (or one trace-equivalent to
	// it); Table.Spec() reconstructs one when only the table artifact is
	// at hand.
	Reference *spec.Spec
	// Sessions is the number of concurrent sessions; default 1.
	Sessions int
	// StepsPerSession is how many events each session must execute to
	// complete; default 256.
	StepsPerSession int
	// Workers is the number of scheduler goroutines sessions are sharded
	// across; default GOMAXPROCS.
	Workers int
	// Window is the in-flight offer bound per session (the FIFO depth);
	// default 4. Reordering and duplication need window ≥ 2 for room.
	Window int
	// Faults is the wire's fault model (zero = a perfect wire).
	Faults rt.FaultModel
	// Seed makes the whole run — every session's walk and fault schedule —
	// reproducible.
	Seed int64
	// ConformEvery audits the full enabled set (table vs tracker) every n
	// executed steps per session; 0 disables the audit, and it only runs
	// when Reference is set. The per-event safety check is always on with
	// a Reference.
	ConformEvery int
	// MaxViolations bounds the retained violation details; default 8.
	MaxViolations int
}

func (c Config) withDefaults() (Config, error) {
	if c.Table == nil {
		return c, fmt.Errorf("convrt: Config.Table is required")
	}
	if c.Table.NumTransitions() == 0 {
		return c, fmt.Errorf("convrt: table %q has no transitions; sessions could never step", c.Table.Name())
	}
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.StepsPerSession <= 0 {
		c.StepsPerSession = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Sessions {
		c.Workers = c.Sessions
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 8
	}
	return c, nil
}

// Report is the outcome of a completed run.
type Report struct {
	Metrics
	// Sessions is the configured session count; Completed + Failed +
	// Canceled partition it at run end.
	Sessions int
	// Canceled counts sessions still unfinished when the context ended.
	Canceled int64
	// Violations holds the first few latched violation details.
	ViolationDetails []Violation
	// Elapsed is the run's wall time; MsgsPerSec is Steps/Elapsed.
	Elapsed    time.Duration
	MsgsPerSec float64
}

// Runner executes a Config. Construct with NewRunner, call Run once;
// Metrics may be called concurrently with Run for a live snapshot (the
// metrics surface a dashboard would poll).
type Runner struct {
	cfg     Config
	workers []*workerMetrics
	shards  [][]Session
	active  atomic.Int64
	vioMu   sync.Mutex
	vios    []Violation
	started atomic.Bool
}

// NewRunner validates cfg and prepares sessions (allocation happens here,
// not on the run path).
func NewRunner(cfg Config) (*Runner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg}
	r.workers = make([]*workerMetrics, cfg.Workers)
	r.shards = make([][]Session, cfg.Workers)
	for w := range r.shards {
		// Contiguous shards: session ids [w*per, …) so ownership is static
		// and every session struct is touched by exactly one goroutine.
		lo, hi := shardRange(cfg.Sessions, cfg.Workers, w)
		r.shards[w] = make([]Session, hi-lo)
		m := &workerMetrics{vioMu: &r.vioMu, vios: &r.vios, vioCap_: cfg.MaxViolations}
		r.workers[w] = m
		for i := range r.shards[w] {
			s := &r.shards[w][i]
			s.init(int32(lo+i), cfg.Table, cfg.Reference, cfg.Seed, cfg.Window,
				cfg.StepsPerSession, cfg.ConformEvery)
			s.faults = faultSched{model: cfg.Faults}
		}
	}
	r.active.Store(int64(cfg.Sessions))
	return r, nil
}

// shardRange splits n sessions as evenly as possible across k workers.
func shardRange(n, k, w int) (lo, hi int) {
	base, rem := n/k, n%k
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// Metrics returns a live snapshot: counters, session gauges, and latency
// quantiles. Safe to call from any goroutine at any time.
func (r *Runner) Metrics() Metrics {
	var s Metrics
	for _, m := range r.workers {
		s.merge(m)
	}
	s.SessionsActive = r.active.Load()
	s.P50StepNs, s.P99StepNs = latencyQuantiles(r.workers)
	return s
}

// Run drives every session to completion (or ctx cancellation) and returns
// the report. It may be called once per Runner.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if r.started.Swap(true) {
		return nil, fmt.Errorf("convrt: Runner.Run called twice")
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := range r.shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.runShard(ctx, r.shards[w], r.workers[w])
		}(w)
	}
	wg.Wait()

	rep := &Report{Sessions: r.cfg.Sessions, Elapsed: time.Since(start)}
	rep.Metrics = r.Metrics()
	rep.Canceled = int64(r.cfg.Sessions) - rep.SessionsCompleted - rep.SessionsFailed
	r.vioMu.Lock()
	rep.ViolationDetails = append([]Violation(nil), r.vios...)
	r.vioMu.Unlock()
	if sec := rep.Elapsed.Seconds(); sec > 0 {
		rep.MsgsPerSec = float64(rep.Steps) / sec
	}
	return rep, ctx.Err()
}

// runShard is one worker's scheduler loop: sweep the shard's sessions,
// pumping each; when a full sweep makes no progress, either everything is
// done, or the earliest delayed message tells us how long to sleep. The
// ctx check sits once per sweep, not per message.
func (r *Runner) runShard(ctx context.Context, shard []Session, m *workerMetrics) {
	remaining := len(shard)
	for remaining > 0 {
		if ctx.Err() != nil {
			return
		}
		now := nowNs()
		progress := false
		var wakeAt int64
		remaining = 0
		for i := range shard {
			s := &shard[i]
			if s.done {
				continue
			}
			if s.pump(now, m) {
				progress = true
			}
			if s.done {
				r.active.Add(-1)
			}
			if !s.done {
				remaining++
				if b := s.blockedUntil(now); b > 0 && (wakeAt == 0 || b < wakeAt) {
					wakeAt = b
				}
			}
		}
		if remaining > 0 && !progress {
			if wakeAt > 0 {
				// Every runnable session is waiting out a delay fault.
				d := time.Duration(wakeAt - nowNs())
				if d > 0 {
					sleepCtx(ctx, d)
				}
				continue
			}
			// No session progressed, none is delayed: the engine's progress
			// invariant (drained pipeline ⇒ a fresh offer) is broken. Fail
			// the stragglers rather than spin — this is a bug trap, and the
			// smoke gate's zero-lost-sessions assertion will surface it.
			for i := range shard {
				s := &shard[i]
				if !s.done {
					s.failed = true
					s.done = true
					m.failed.Add(1)
					m.starved.Add(1)
					r.active.Add(-1)
				}
			}
			return
		}
	}
}

// sleepCtx sleeps d or until ctx is done, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Run is the one-shot convenience wrapper: NewRunner + Run.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx)
}
