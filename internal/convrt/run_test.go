package convrt

import (
	"context"
	"sync"
	"testing"
	"time"

	rt "protoquot/internal/runtime"
	"protoquot/internal/spec"
)

func compileLoop(t testing.TB) (*Table, *spec.Spec) {
	t.Helper()
	s, err := spec.NewBuilder("ab-loop").
		State("s0").State("s1").State("s2").
		Init("s0").
		Ext("s0", "+a", "s1").
		Ext("s1", "-b", "s0").
		Ext("s1", "+a", "s2").
		Ext("s2", "-b", "s0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return tab, s
}

func TestRunPerfectWire(t *testing.T) {
	tab, ref := compileLoop(t)
	rep, err := Run(context.Background(), Config{
		Table: tab, Reference: ref,
		Sessions: 50, StepsPerSession: 200, Workers: 4,
		Seed: 1, ConformEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsCompleted != 50 || rep.SessionsFailed != 0 || rep.Canceled != 0 {
		t.Fatalf("sessions: completed=%d failed=%d canceled=%d, want 50/0/0",
			rep.SessionsCompleted, rep.SessionsFailed, rep.Canceled)
	}
	if rep.Steps != 50*200 {
		t.Fatalf("steps = %d, want %d", rep.Steps, 50*200)
	}
	if rep.Violations != 0 {
		t.Fatalf("violations = %d: %+v", rep.Violations, rep.ViolationDetails)
	}
	if rep.Audits == 0 {
		t.Fatal("conformance audits never ran")
	}
	// A perfect wire never discards: every offer executes.
	if rep.Stale != 0 || rep.Dropped+rep.Corrupted+rep.Duplicated+rep.Reordered+rep.Delayed != 0 {
		t.Fatalf("perfect wire saw faults: %+v", rep.Metrics)
	}
	if rep.Proposed != rep.Steps {
		t.Fatalf("proposed = %d, want %d (no retransmission on a perfect wire)", rep.Proposed, rep.Steps)
	}
	if rep.MsgsPerSec <= 0 {
		t.Fatalf("MsgsPerSec = %v", rep.MsgsPerSec)
	}
	if rep.P99StepNs < rep.P50StepNs || rep.P50StepNs <= 0 {
		t.Fatalf("latency quantiles p50=%d p99=%d", rep.P50StepNs, rep.P99StepNs)
	}
}

func TestRunUnderFaults(t *testing.T) {
	tab, ref := compileLoop(t)
	faults, err := rt.ParseFaults("loss=0.1,dup=0.1,reorder=0.1,corrupt=0.05,delay=20us")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		Table: tab, Reference: ref,
		Sessions: 40, StepsPerSession: 150, Workers: 4, Window: 4,
		Faults: faults, Seed: 7, ConformEvery: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsCompleted != 40 {
		t.Fatalf("completed = %d/40 (failed=%d starved=%d): %+v",
			rep.SessionsCompleted, rep.SessionsFailed, rep.Starved, rep.ViolationDetails)
	}
	if rep.Violations != 0 {
		t.Fatalf("violations = %d: %+v", rep.Violations, rep.ViolationDetails)
	}
	// Every configured fault class must have fired at these rates and
	// volumes — the load harness exercises what it claims to.
	if rep.Dropped == 0 || rep.Corrupted == 0 || rep.Duplicated == 0 || rep.Reordered == 0 || rep.Delayed == 0 {
		t.Fatalf("fault classes silent: %+v", rep.Metrics)
	}
	// Loss forces retransmission; duplication and gaps force stale
	// discards.
	if rep.Proposed <= rep.Steps {
		t.Fatalf("proposed = %d, steps = %d: lossy wire should over-offer", rep.Proposed, rep.Steps)
	}
	if rep.Stale == 0 {
		t.Fatal("no stale discards under dup+reorder")
	}
}

// TestRunDeterministicAcrossWorkers pins the reproducibility contract:
// counters are a pure function of (seed, config), independent of worker
// count and scheduling, because every session owns its stream.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	tab, ref := compileLoop(t)
	faults, err := rt.ParseFaults("loss=0.15,dup=0.1,reorder=0.2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) Metrics {
		rep, err := Run(context.Background(), Config{
			Table: tab, Reference: ref,
			Sessions: 30, StepsPerSession: 100, Workers: workers,
			Faults: faults, Seed: 42, ConformEvery: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := rep.Metrics
		// Latency and the active gauge are timing-dependent by nature.
		m.P50StepNs, m.P99StepNs, m.SessionsActive = 0, 0, 0
		return m
	}
	a, b, c := run(1), run(4), run(4)
	if a != b || b != c {
		t.Fatalf("metrics differ across runs:\n1 worker:  %+v\n4 workers: %+v\n4 workers: %+v", a, b, c)
	}
}

// TestRunDetectsMiscompiledTable hand-corrupts a compiled table's successor
// and checks the online safety conformance path latches it.
func TestRunDetectsMiscompiledTable(t *testing.T) {
	tab, ref := compileLoop(t)
	// Redirect s1 --(-b)--> s0 to s2: the executed trace diverges from the
	// specification at the following event.
	ev := tab.EventID("-b")
	tab.next[1*tab.numEvents+ev] = 2
	tab.finish()
	rep, err := Run(context.Background(), Config{
		Table: tab, Reference: ref,
		Sessions: 4, StepsPerSession: 100, Workers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 || rep.SessionsFailed == 0 {
		t.Fatalf("miscompiled table not caught: %+v", rep.Metrics)
	}
	if len(rep.ViolationDetails) == 0 {
		t.Fatal("no violation details recorded")
	}
	v := rep.ViolationDetails[0]
	if v.Kind != "safety" {
		t.Fatalf("violation kind %q, want safety", v.Kind)
	}
}

// TestRunDetectsRestrictiveTable drops a transition from the table. The
// session never offers the missing event (it drives from the table), so
// only the sampled enabled-set audit can see the divergence.
func TestRunDetectsRestrictiveTable(t *testing.T) {
	tab, ref := compileLoop(t)
	// Remove s1 --(+a)--> s2; s1 keeps -b, so sessions still make progress.
	ev := tab.EventID("+a")
	tab.next[1*tab.numEvents+ev] = NoState
	tab.finish()
	rep, err := Run(context.Background(), Config{
		Table: tab, Reference: ref,
		Sessions: 4, StepsPerSession: 100, Workers: 2, Seed: 3, ConformEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Fatalf("restrictive table not caught by enabled-set audit: %+v", rep.Metrics)
	}
	found := false
	for _, v := range rep.ViolationDetails {
		if v.Kind == "enabled-set" {
			found = true
			if len(v.Enabled) <= len(v.TableEnabled) {
				t.Fatalf("audit detail inverted: spec %v vs table %v", v.Enabled, v.TableEnabled)
			}
		}
	}
	if !found {
		t.Fatalf("no enabled-set violation in %+v", rep.ViolationDetails)
	}
}

func TestRunCancellation(t *testing.T) {
	tab, ref := compileLoop(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{
		Table: tab, Reference: ref,
		Sessions: 8, StepsPerSession: 1 << 20, Workers: 2, Seed: 1,
	})
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if rep == nil {
		t.Fatal("canceled run must still report partial metrics")
	}
	if rep.Canceled == 0 {
		t.Fatalf("canceled = %d, want > 0", rep.Canceled)
	}
}

// TestRunWithoutReference pins pure-throughput mode: a nil Reference with
// a positive ConformEvery must run to completion with conformance fully
// off (no tracker, no audits) rather than dereferencing a nil tracker.
func TestRunWithoutReference(t *testing.T) {
	tab, _ := compileLoop(t)
	faults, err := rt.ParseFaults("loss=0.1,dup=0.1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		Table:           tab,
		Sessions:        32,
		StepsPerSession: 100,
		Workers:         4,
		Seed:            11,
		ConformEvery:    8,
		Faults:          faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsCompleted != 32 || rep.SessionsFailed != 0 {
		t.Fatalf("completed=%d failed=%d, want 32/0", rep.SessionsCompleted, rep.SessionsFailed)
	}
	if rep.Audits != 0 || rep.Violations != 0 {
		t.Errorf("audits=%d violations=%d, want 0/0 without a reference", rep.Audits, rep.Violations)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("nil table accepted")
	}
	empty, err := spec.NewBuilder("empty").State("s0").Init("s0").Build()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compile(empty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Config{Table: tab}); err == nil {
		t.Fatal("zero-transition table accepted")
	}
	if _, err := NewRunner(Config{Table: mustCompileLoop(t)}); err != nil {
		t.Fatal(err)
	}
	r, _ := NewRunner(Config{Table: mustCompileLoop(t)})
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Fatal("second Run on one Runner accepted")
	}
}

func mustCompileLoop(t *testing.T) *Table {
	t.Helper()
	tab, _ := compileLoop(t)
	return tab
}

// TestLiveMetricsUnderRace exercises the metrics surface a dashboard would
// poll: several workers step sessions sharing one immutable table while
// another goroutine snapshots Metrics concurrently. Meaningful under
// -race; also asserts snapshot monotonicity.
func TestLiveMetricsUnderRace(t *testing.T) {
	tab, ref := compileLoop(t)
	faults, err := rt.ParseFaults("loss=0.05,dup=0.05,delay=50us")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Table: tab, Reference: ref,
		Sessions: 64, StepsPerSession: 400, Workers: 4,
		Faults: faults, Seed: 11, ConformEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := r.Metrics()
			if m.Steps < last {
				t.Errorf("steps went backwards: %d after %d", m.Steps, last)
				return
			}
			last = m.Steps
			time.Sleep(100 * time.Microsecond)
		}
	}()
	rep, err := r.Run(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsCompleted != 64 || rep.Violations != 0 {
		t.Fatalf("completed=%d violations=%d: %+v", rep.SessionsCompleted, rep.Violations, rep.ViolationDetails)
	}
}

// TestSessionPumpDoesNotAllocate pins the acceptance criterion: the
// steady-state execution path — deliver, table step, latency observe,
// fresh offer burst — performs zero allocations per step once a session is
// initialized. Conformance tracking is deliberately off this path (the
// tracker keeps per-state maps); Config.Reference documents that.
func TestSessionPumpDoesNotAllocate(t *testing.T) {
	tab, _ := compileLoop(t)
	m := &workerMetrics{vioMu: &sync.Mutex{}, vios: &[]Violation{}, vioCap_: 1}
	var s Session
	s.init(0, tab, nil, 99, 4, 1<<30, 0)
	var now int64
	allocs := testing.AllocsPerRun(2000, func() {
		now += int64(time.Millisecond)
		if !s.pump(now, m) {
			t.Fatal("pump made no progress on a perfect wire")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state pump allocated %.1f per run, want 0", allocs)
	}
	if s.stepsDone == 0 || s.failed {
		t.Fatalf("session did not run: steps=%d failed=%v", s.stepsDone, s.failed)
	}
}

// TestSessionPumpWithFaultsDoesNotAllocate extends the zero-allocation
// contract to the fault-injection path (drop/dup/reorder draws, ring
// pushes) — everything except delay, whose wake path sleeps, and the
// tracker.
func TestSessionPumpWithFaultsDoesNotAllocate(t *testing.T) {
	tab, _ := compileLoop(t)
	faults, err := rt.ParseFaults("loss=0.2,dup=0.2,reorder=0.2,corrupt=0.1")
	if err != nil {
		t.Fatal(err)
	}
	m := &workerMetrics{vioMu: &sync.Mutex{}, vios: &[]Violation{}, vioCap_: 1}
	var s Session
	s.init(0, tab, nil, 123, 4, 1<<30, 0)
	s.faults = faultSched{model: faults}
	var now int64
	allocs := testing.AllocsPerRun(2000, func() {
		now += int64(time.Millisecond)
		s.pump(now, m)
	})
	if allocs != 0 {
		t.Fatalf("faulty-wire pump allocated %.1f per run, want 0", allocs)
	}
	if s.stepsDone == 0 {
		t.Fatal("session made no steps")
	}
}

func BenchmarkTableStep(b *testing.B) {
	tab, _ := compileLoop(b)
	st := tab.Init()
	var rng uint64 = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		evs := tab.Enabled(st)
		rng = rng*6364136223846793005 + 1442695040888963407
		st, _ = tab.Step(st, evs[rng>>33%uint64(len(evs))])
	}
}

func BenchmarkSessionPump(b *testing.B) {
	tab, _ := compileLoop(b)
	m := &workerMetrics{vioMu: &sync.Mutex{}, vios: &[]Violation{}, vioCap_: 1}
	var s Session
	s.init(0, tab, nil, 99, 4, 1<<62, 0)
	b.ReportAllocs()
	var now int64
	for i := 0; i < b.N; i++ {
		now += int64(time.Millisecond)
		s.pump(now, m)
	}
}
