package convrt

import (
	"time"

	"protoquot/internal/runtime"
	"protoquot/internal/spec"
)

// A Session executes one compiled converter over a bounded-FIFO message
// bus. The session's driver walks the converter's own transition graph —
// at each step it draws one of the enabled events from its seeded source —
// and *offers* the chosen events onto the wire; the execution side only
// advances when a message is *delivered*, so the wire's misbehavior
// (loss, duplication, reordering, corruption, delay — the same
// runtime.FaultModel fault classes convsim uses) acts between intent and
// effect exactly as a real channel would:
//
//   - a lost or corrupted offer never executes; when the pipeline drains
//     the driver re-anchors at the actual execution state and re-offers
//     (the retransmission discipline, without timers);
//   - a duplicated delivery executes again only if the event is still
//     enabled — a legitimate trace extension, the very behavior derived
//     converters owe duplicating channels — and is otherwise discarded as
//     stale by selective receive;
//   - a reordered or gap-following delivery that the current state does
//     not enable is likewise discarded as stale.
//
// Every event the session *executes* is therefore enabled in the compiled
// table at the moment of execution; the online conformance check replays
// the same event into a spec.TraceTracker over the source specification
// and latches a violation if the tracker disagrees — table-vs-spec
// divergence, the runtime counterpart of the differential suite.
//
// A session is owned by exactly one worker goroutine (see Runner); only
// the immutable *Table is shared. The steady-state pump path — deliver,
// step, offer — allocates nothing.
type Session struct {
	t       *Table
	tracker *spec.TraceTracker // nil when conformance is off
	rng     uint64             // splitmix64 state; never zero

	state int32 // execution state
	pred  int32 // driver's predicted state for the current burst

	// wire is the bounded FIFO: a preallocated ring of in-flight messages.
	// Capacity is 2×window so best-effort duplicates have room without
	// displacing real traffic.
	wire  []wireMsg
	head  int
	count int

	window int
	faults faultSched

	stepsDone int
	target    int
	proposals int64 // lifetime offers, for the starvation guard
	done      bool
	failed    bool

	// conformEvery audits the full enabled set (table vs tracker) every n
	// executed steps; 0 disables the audit. The audit allocates (tracker
	// enabled sets are built per call) and is deliberately off the
	// steady-state path.
	conformEvery int
	sinceAudit   int

	id int32
}

// wireMsg is one in-flight offer.
type wireMsg struct {
	ev      int32
	enqNs   int64 // enqueue time, for step-latency measurement
	readyNs int64 // earliest delivery time (delay faults); 0 = immediate
}

// initSession resets s onto table t at the given seed. ref is the
// conformance reference (nil disables tracking).
func (s *Session) init(id int32, t *Table, ref *spec.Spec, seed int64, window, target, conformEvery int) {
	s.id = id
	s.t = t
	s.tracker = nil
	if ref != nil {
		s.tracker = ref.Track()
	}
	s.rng = uint64(seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 1
	s.state = t.Init()
	s.pred = s.state
	s.window = window
	s.wire = make([]wireMsg, 2*window)
	s.head, s.count = 0, 0
	s.target = target
	s.stepsDone = 0
	s.proposals = 0
	s.done = false
	s.failed = false
	s.conformEvery = conformEvery
	if s.tracker == nil {
		// The enabled-set audit compares against the tracker; without a
		// reference there is nothing to audit.
		s.conformEvery = 0
	}
	s.sinceAudit = 0
}

// next64 is splitmix64: a tiny, allocation-free seeded source. Each
// session draws from its own stream, so one session's traffic never
// perturbs another's schedule and a run is reproducible from (seed, id).
func (s *Session) next64() uint64 {
	s.rng += 0x9E3779B97F4A7C15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// starvationFactor bounds how many offers a session may make per target
// step before it is declared starved (a safety valve against adversarial
// fault models and engine bugs; at loss rate p the expected offers per
// executed step are 1/(1-p), nowhere near the bound for any sane model).
const starvationFactor = 256

// pump advances the session: deliver every deliverable message, then, if
// the pipeline has drained, offer a fresh burst. It returns true if any
// observable work happened. nowNs is the worker's clock sample for this
// sweep (one time.Now per sweep, not per message).
func (s *Session) pump(nowNs int64, m *workerMetrics) bool {
	if s.done {
		return false
	}
	progress := false
	for s.count > 0 {
		msg := &s.wire[s.head]
		if msg.readyNs > nowNs {
			break // head-of-line delay: FIFO order is preserved
		}
		ev := msg.ev
		enq := msg.enqNs
		s.head++
		if s.head == len(s.wire) {
			s.head = 0
		}
		s.count--
		progress = true
		nxt, ok := s.t.Step(s.state, ev)
		if !ok {
			m.stale.Add(1)
			continue
		}
		if s.tracker != nil && !s.tracker.Step(s.t.EventName(ev)) {
			s.fail(m, ev)
			return true
		}
		s.state = nxt
		s.stepsDone++
		m.steps.Add(1)
		m.observeLatency(nowNs - enq)
		if s.conformEvery > 0 {
			s.sinceAudit++
			if s.sinceAudit >= s.conformEvery {
				s.sinceAudit = 0
				if !s.auditEnabled(m) {
					return true
				}
			}
		}
		if s.stepsDone >= s.target {
			s.done = true
			s.count = 0 // drain whatever is still in flight
			m.completed.Add(1)
			return true
		}
	}
	if s.count == 0 {
		if s.offerBurst(nowNs, m) {
			progress = true
		}
	}
	return progress
}

// offerBurst re-anchors the driver at the execution state and offers up to
// window events along a predicted path, drawing one fault decision per
// offer. Lost and corrupted offers are simply not enqueued — the messages
// after the gap will arrive stale and be discarded, and the next drained
// pipeline re-anchors — which is exactly the go-back-N shape real
// converters exhibit over lossy channels.
func (s *Session) offerBurst(nowNs int64, m *workerMetrics) bool {
	s.pred = s.state
	offered := false
	for i := 0; i < s.window; i++ {
		enabled := s.t.Enabled(s.pred)
		if len(enabled) == 0 {
			// Terminal state. If execution is already there with nothing in
			// flight, wrap the session around to the initial state (counting
			// a completed converter lifecycle); otherwise stop the burst and
			// let the pipeline drain.
			if i == 0 && s.pred == s.state {
				s.reset(m)
				offered = true
				continue
			}
			break
		}
		ev := enabled[int(s.next64()%uint64(len(enabled)))]
		nxt, _ := s.t.Step(s.pred, ev)
		s.pred = nxt
		s.proposals++
		m.proposed.Add(1)
		if s.proposals > int64(starvationFactor*s.target)+1024 {
			s.failed = true
			s.done = true
			s.count = 0
			m.failed.Add(1)
			m.starved.Add(1)
			return true
		}
		d := s.faults.next(s)
		switch {
		case d.drop:
			m.dropped.Add(1)
			offered = true // the offer happened; the wire ate it
			continue
		case d.corrupt:
			m.corrupted.Add(1)
			offered = true
			continue
		}
		msg := wireMsg{ev: ev, enqNs: nowNs}
		if d.delayNs > 0 {
			msg.readyNs = nowNs + d.delayNs
			m.delayed.Add(1)
		}
		s.push(msg)
		offered = true
		if d.dup && s.count < len(s.wire) {
			s.push(msg)
			m.duplicated.Add(1)
		}
		if d.reorder && s.count >= 2 {
			// Swap the two most recent offers: the new message overtakes
			// its predecessor.
			i1 := (s.head + s.count - 1) % len(s.wire)
			i2 := (s.head + s.count - 2) % len(s.wire)
			s.wire[i1], s.wire[i2] = s.wire[i2], s.wire[i1]
			m.reordered.Add(1)
		}
	}
	return offered
}

// push appends to the ring; callers guarantee room (window offers + dups
// fit in the 2×window ring by construction).
func (s *Session) push(msg wireMsg) {
	s.wire[(s.head+s.count)%len(s.wire)] = msg
	s.count++
}

// reset wraps the session around after a terminal state: back to the
// initial state, tracker re-anchored at the empty trace.
func (s *Session) reset(m *workerMetrics) {
	s.state = s.t.Init()
	s.pred = s.state
	if s.tracker != nil {
		s.tracker.Reset()
	}
	m.resets.Add(1)
}

// fail latches a conformance violation: the table executed an event the
// reference specification does not enable.
func (s *Session) fail(m *workerMetrics, ev int32) {
	s.failed = true
	s.done = true
	s.count = 0
	m.failed.Add(1)
	m.violations.Add(1)
	m.recordViolation(Violation{
		Session: s.id,
		Kind:    "safety",
		State:   s.t.StateName(s.state),
		Event:   s.t.EventName(ev),
		Steps:   s.stepsDone,
		Enabled: s.tracker.Enabled(),
	})
}

// auditEnabled compares the full enabled set of the compiled table against
// the tracker's — the sampled two-sided conformance check (the per-step
// check only catches a table that is too permissive; the audit also
// catches one that is too restrictive). Returns false when a violation was
// latched.
func (s *Session) auditEnabled(m *workerMetrics) bool {
	m.audits.Add(1)
	want := s.tracker.Enabled()
	got := s.t.Enabled(s.state)
	match := len(want) == len(got)
	if match {
		for i, ev := range got {
			if s.t.EventName(ev) != want[i] {
				match = false
				break
			}
		}
	}
	if match {
		return true
	}
	s.failed = true
	s.done = true
	s.count = 0
	m.failed.Add(1)
	m.violations.Add(1)
	enabled := make([]spec.Event, len(got))
	for i, ev := range got {
		enabled[i] = s.t.EventName(ev)
	}
	m.recordViolation(Violation{
		Session:      s.id,
		Kind:         "enabled-set",
		State:        s.t.StateName(s.state),
		Steps:        s.stepsDone,
		Enabled:      want,
		TableEnabled: enabled,
	})
	return false
}

// blockedUntil returns the head message's ready time when the session is
// waiting out a delay fault, or 0 when it is runnable (or done).
func (s *Session) blockedUntil(nowNs int64) int64 {
	if s.done || s.count == 0 {
		return 0
	}
	if r := s.wire[s.head].readyNs; r > nowNs {
		return r
	}
	return 0
}

// faultSched draws per-offer fault decisions from the session's own
// stream, honoring runtime.FaultModel semantics: one draw per configured
// fault class per offer in a fixed order, so the consumed stream depends
// only on the model and the offer count — never on outcomes — and a whole
// run is a deterministic function of (seed, model, converter).
type faultSched struct {
	model     runtime.FaultModel
	burstLeft int
}

// decision is the fate of one offer.
type decision struct {
	drop    bool
	corrupt bool
	dup     bool
	reorder bool
	delayNs int64
}

// chance draws a probability check without touching float conversion on
// the zero path.
func (f *faultSched) chance(s *Session, p float64) bool {
	if p <= 0 {
		return false
	}
	// 53-bit mantissa draw, the same distribution rand.Float64 uses.
	return float64(s.next64()>>11)/(1<<53) < p
}

func (f *faultSched) next(s *Session) decision {
	var d decision
	m := f.model
	if f.chance(s, m.Loss) {
		d.drop = true
		if m.Burst > 1 {
			f.burstLeft = int(s.next64() % uint64(m.Burst))
		}
	}
	if f.burstLeft > 0 && !d.drop {
		f.burstLeft--
		d.drop = true
	}
	if f.chance(s, m.Corrupt) && !d.drop {
		d.corrupt = true
	}
	if f.chance(s, m.Dup) {
		d.dup = true
	}
	if f.chance(s, m.Reorder) {
		d.reorder = true
	}
	if m.Delay > 0 {
		d.delayNs = int64(s.next64() % uint64(m.Delay+1))
	}
	return d
}

// nowNs is the monotonic-enough clock the engine samples once per worker
// sweep.
func nowNs() int64 { return time.Now().UnixNano() }
