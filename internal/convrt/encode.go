package convrt

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"protoquot/internal/spec"
)

// encodeMagic is the first line of every encoded table; the version suffix
// changes whenever the layout does, so a decoder never misreads an
// incompatible artifact.
const encodeMagic = "convrt-table/v1"

// Encode renders the table in its wire form: a line-oriented, versioned,
// deterministic text encoding — the compiled-table artifact class quotd
// stores beside the .spec/.dot/.go renderings. The format is
//
//	convrt-table/v1
//	name <quoted>
//	states <n> events <m> init <i>
//	event <quoted>            × m, in id order
//	state <quoted>            × n, in index order
//	row <m cells>             × n, "." for not-enabled, else the successor
//
// Only name, shape, and the next table are encoded; the interning map and
// the CSR enabled index are derived on decode. Encoding the same table
// always yields the same bytes, so the artifact is content-stable.
func Encode(t *Table) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\n", encodeMagic)
	fmt.Fprintf(&b, "name %s\n", strconv.Quote(t.name))
	fmt.Fprintf(&b, "states %d events %d init %d\n", len(t.stateNames), len(t.events), t.init)
	for _, e := range t.events {
		fmt.Fprintf(&b, "event %s\n", strconv.Quote(string(e)))
	}
	for _, s := range t.stateNames {
		fmt.Fprintf(&b, "state %s\n", strconv.Quote(s))
	}
	for st := 0; st < len(t.stateNames); st++ {
		b.WriteString("row")
		row := t.next[st*int(t.numEvents) : (st+1)*int(t.numEvents)]
		for _, nxt := range row {
			if nxt == NoState {
				b.WriteString(" .")
			} else {
				fmt.Fprintf(&b, " %d", nxt)
			}
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// Decode parses the wire form back into a Table, validating every
// structural invariant before returning — a corrupt artifact yields an
// error, never a table that panics later.
func Decode(data []byte) (*Table, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	nextLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", fmt.Errorf("convrt: decode: %w", err)
			}
			return "", fmt.Errorf("convrt: decode: truncated after line %d", line)
		}
		line++
		return sc.Text(), nil
	}

	l, err := nextLine()
	if err != nil {
		return nil, err
	}
	if l != encodeMagic {
		return nil, fmt.Errorf("convrt: decode: bad magic %q (want %q)", l, encodeMagic)
	}
	l, err = nextLine()
	if err != nil {
		return nil, err
	}
	rest, ok := strings.CutPrefix(l, "name ")
	if !ok {
		return nil, fmt.Errorf("convrt: decode line %d: want name", line)
	}
	name, err := strconv.Unquote(rest)
	if err != nil {
		return nil, fmt.Errorf("convrt: decode line %d: name: %w", line, err)
	}
	l, err = nextLine()
	if err != nil {
		return nil, err
	}
	var nStates, nEvents int
	var init int32
	if _, err := fmt.Sscanf(l, "states %d events %d init %d", &nStates, &nEvents, &init); err != nil {
		return nil, fmt.Errorf("convrt: decode line %d: shape: %w", line, err)
	}
	const maxDim = 1 << 24
	if nStates <= 0 || nEvents < 0 || nStates > maxDim || nEvents > maxDim {
		return nil, fmt.Errorf("convrt: decode line %d: implausible shape %d×%d", line, nStates, nEvents)
	}
	t := &Table{
		name:       name,
		init:       init,
		events:     make([]spec.Event, 0, nEvents),
		stateNames: make([]string, 0, nStates),
		numEvents:  int32(nEvents),
		next:       make([]int32, 0, nStates*nEvents),
	}
	for i := 0; i < nEvents; i++ {
		l, err = nextLine()
		if err != nil {
			return nil, err
		}
		rest, ok := strings.CutPrefix(l, "event ")
		if !ok {
			return nil, fmt.Errorf("convrt: decode line %d: want event", line)
		}
		e, err := strconv.Unquote(rest)
		if err != nil {
			return nil, fmt.Errorf("convrt: decode line %d: event: %w", line, err)
		}
		t.events = append(t.events, spec.Event(e))
	}
	for i := 0; i < nStates; i++ {
		l, err = nextLine()
		if err != nil {
			return nil, err
		}
		rest, ok := strings.CutPrefix(l, "state ")
		if !ok {
			return nil, fmt.Errorf("convrt: decode line %d: want state", line)
		}
		s, err := strconv.Unquote(rest)
		if err != nil {
			return nil, fmt.Errorf("convrt: decode line %d: state: %w", line, err)
		}
		t.stateNames = append(t.stateNames, s)
	}
	for st := 0; st < nStates; st++ {
		l, err = nextLine()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(l)
		if len(fields) != nEvents+1 || fields[0] != "row" {
			return nil, fmt.Errorf("convrt: decode line %d: want row with %d cells", line, nEvents)
		}
		for _, f := range fields[1:] {
			if f == "." {
				t.next = append(t.next, NoState)
				continue
			}
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("convrt: decode line %d: cell %q: %w", line, f, err)
			}
			t.next = append(t.next, int32(v))
		}
	}
	if sc.Scan() {
		return nil, fmt.Errorf("convrt: decode: trailing data after line %d", line)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	t.finish()
	return t, nil
}

// CompileEncoded is the one-call artifact producer: compile s and return
// the wire form. It is what the server uses to attach the table artifact
// to a derivation result.
func CompileEncoded(s *spec.Spec) ([]byte, error) {
	t, err := Compile(s)
	if err != nil {
		return nil, err
	}
	return Encode(t), nil
}
