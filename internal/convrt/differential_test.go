package convrt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"protoquot/internal/compose"
	"protoquot/internal/core"
	"protoquot/internal/dsl"
	"protoquot/internal/protocols"
	"protoquot/internal/protosmith"
	"protoquot/internal/spec"
	"protoquot/internal/specgen"
)

// The differential suite: for every converter-shaped specification this
// repo can produce — the committed specs/ fixtures, the paper systems
// derived fresh, and a pool of protosmith-generated systems — the compiled
// table's Step/Enabled must be trace-equivalent to spec.TraceTracker
// simulation, exhaustively over (state × event) and along seeded random
// walks, and the encoded artifact must round-trip. (The third leg of the
// satellite, equivalence against codegen-generated Go, lives in
// internal/codegen's tests: importing codegen here would cycle, since the
// table backend compiles through this package.)

// eligible reports whether s satisfies Compile's preconditions.
func eligible(s *spec.Spec) bool {
	return s.NumInternalTransitions() == 0 && s.DeterministicExternal()
}

// checkDifferential runs the full battery on one eligible spec.
func checkDifferential(t *testing.T, s *spec.Spec) {
	t.Helper()
	tab, err := Compile(s)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	exhaustiveEquiv(t, tab, s)
	walkEquiv(t, tab, s, 300, 0xC0FFEE)
	data := Encode(tab)
	dec, err := Decode(data)
	if err != nil {
		t.Fatalf("%s: decode: %v", s.Name(), err)
	}
	if !bytes.Equal(Encode(dec), data) {
		t.Fatalf("%s: encode/decode not a fixed point", s.Name())
	}
	exhaustiveEquiv(t, dec, s)
}

// walkEquiv drives the table and a TraceTracker in lockstep along a seeded
// random walk, comparing enabled sets at every step and restarting both at
// terminal states.
func walkEquiv(t *testing.T, tab *Table, s *spec.Spec, steps int, seed uint64) {
	t.Helper()
	tr := s.Track()
	st := tab.Init()
	rng := seed*0x9E3779B97F4A7C15 + 1
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < steps; i++ {
		got := tab.Enabled(st)
		want := tr.Enabled()
		if len(got) != len(want) {
			t.Fatalf("%s step %d state %s: table enables %d events, tracker %d (%v)",
				s.Name(), i, tab.StateName(st), len(got), len(want), want)
		}
		for j, ev := range got {
			if tab.EventName(ev) != want[j] {
				t.Fatalf("%s step %d state %s: enabled[%d] table %q tracker %q",
					s.Name(), i, tab.StateName(st), j, tab.EventName(ev), want[j])
			}
		}
		if len(got) == 0 {
			st = tab.Init()
			tr.Reset()
			continue
		}
		ev := got[int(next()%uint64(len(got)))]
		nxt, ok := tab.Step(st, ev)
		if !ok {
			t.Fatalf("%s step %d: table refused its own enabled event %q", s.Name(), i, tab.EventName(ev))
		}
		if !tr.Step(tab.EventName(ev)) {
			t.Fatalf("%s step %d state %s: tracker refused table-enabled event %q",
				s.Name(), i, tab.StateName(st), tab.EventName(ev))
		}
		st = nxt
	}
}

// TestDifferentialSpecFixtures covers every committed specs/ fixture:
// converter-shaped ones must compile and agree with the tracker; the rest
// (raw protocol machines with internal transitions or nondeterminism) must
// be rejected, mirroring codegen's eligibility exactly.
func TestDifferentialSpecFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no specs/ fixtures found")
	}
	compiled, rejected := 0, 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := dsl.Parse(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, s := range ss {
			name := filepath.Base(f) + ":" + s.Name()
			t.Run(name, func(t *testing.T) {
				if eligible(s) {
					compiled++
					checkDifferential(t, s)
				} else {
					rejected++
					if _, err := Compile(s); err == nil {
						t.Fatalf("Compile accepted ineligible spec %s", s.Name())
					}
				}
			})
		}
	}
	if compiled == 0 {
		t.Fatalf("no fixture compiled (rejected %d): corpus rotted", rejected)
	}
}

// TestDifferentialPaperSystems derives the paper's converters fresh —
// Figure 14 maximal and pruned, and the smallest chain family instance —
// and runs the battery on each.
func TestDifferentialPaperSystems(t *testing.T) {
	b := protocols.ColocatedB()
	res, err := core.Derive(protocols.Service(), b, core.Options{OmitVacuous: true})
	if err != nil {
		t.Fatal(err)
	}
	checkDifferential(t, res.Converter)
	pruned, err := core.Prune(protocols.Service(), b, res.Converter)
	if err != nil {
		t.Fatal(err)
	}
	checkDifferential(t, pruned)

	fam, err := specgen.ParseFamily("chain(2)")
	if err != nil {
		t.Fatal(err)
	}
	env, err := compose.Many(fam.Components...)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := core.Derive(fam.Service, env, core.Options{OmitVacuous: true})
	if err != nil {
		t.Fatal(err)
	}
	checkDifferential(t, cres.Converter)
}

// TestDifferentialProtosmith scans protosmith seeds until 25 derivable
// converters are collected (roughly 40% of seeds admit one) and runs the
// battery on each — randomized systems reach shapes the hand-built corpus
// never does.
func TestDifferentialProtosmith(t *testing.T) {
	const want = 25
	found := 0
	for seed := int64(0); seed < 400 && found < want; seed++ {
		sys := protosmith.Generate(seed, protosmith.DefaultKnobs())
		if err := sys.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		env, err := compose.Many(sys.Components...)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.Derive(sys.Service, env, core.Options{OmitVacuous: true, MaxStates: 1 << 16})
		if err != nil || !res.Exists {
			continue
		}
		found++
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkDifferential(t, res.Converter)
		})
	}
	if found < want {
		t.Fatalf("only %d derivable converters in 400 seeds, want %d", found, want)
	}
}
