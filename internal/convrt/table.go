// Package convrt is the converter execution runtime: it compiles a derived
// converter specification into an allocation-free integer-indexed form —
// dense event interning, a flat (state × event) transition table, and a CSR
// enabled-set index — and runs thousands of concurrent converter sessions
// over a bounded-FIFO message bus with seeded fault injection
// (internal/runtime's fault models) and per-session online conformance
// checking against the specification the table was compiled from.
//
// The repo's other subsystems derive converters (internal/core), serve them
// (internal/server), and render them (internal/codegen); convrt is what
// *operates* them: the interpreter a deployment would actually run on the
// data path, where a string switch per message and a map lookup per enabled
// set are not acceptable. Compile is a pure function of the specification,
// so a compiled table is itself a cacheable artifact (Encode/Decode give it
// a stable wire form, served by quotd beside the .spec/.dot/.go renderings)
// and generated-code form (internal/codegen's table backend embeds the same
// representation as Go arrays).
package convrt

import (
	"fmt"
	"sort"

	"protoquot/internal/spec"
)

// NoEvent and NoState are the sentinel ids returned by failed lookups.
const (
	NoEvent int32 = -1
	NoState int32 = -1
)

// Table is a compiled converter: the same machine a *spec.Spec describes,
// re-expressed so that Step and Enabled touch only flat int32 arrays.
// Events are interned as dense ids in alphabet order, states keep the
// specification's dense indices, and the transition function is a single
// row-major (state × event) array with NoState marking "not enabled".
//
// A Table is immutable after Compile/Decode and safe for any number of
// concurrent readers; sessions share one table and carry only their own
// int32 cursor. The zero-allocation contract: Step, Enabled, EventID,
// Degree, and the scalar accessors never allocate (pinned by
// TestTableStepDoesNotAllocate).
type Table struct {
	name       string
	init       int32
	events     []spec.Event // id → event, sorted ascending (the interning order)
	eventIDs   map[spec.Event]int32
	stateNames []string

	// next is the row-major transition table: next[st*numEvents+ev] is the
	// successor state, or NoState. numEvents is kept as int32 to make the
	// row offset arithmetic explicit.
	next      []int32
	numEvents int32

	// enabled is a CSR index over next: enabledEvs[enabledOff[st]:
	// enabledOff[st+1]] lists the event ids enabled in st, ascending. It is
	// redundant with next but turns "what can happen here" from an O(|Σ|)
	// scan into a slice header.
	enabledOff []int32
	enabledEvs []int32
}

// Compile builds the table form of s. The preconditions are those of
// executable converters (and of internal/codegen): no internal transitions
// and at most one successor per (state, event). Quotient outputs satisfy
// both; resolve a nondeterministic spec first (core.Prune, Normalize, or
// Minimize).
func Compile(s *spec.Spec) (*Table, error) {
	if s.NumInternalTransitions() > 0 {
		return nil, fmt.Errorf("convrt: %s has internal transitions; compile a converter, not a raw spec", s.Name())
	}
	if !s.DeterministicExternal() {
		return nil, fmt.Errorf("convrt: %s is nondeterministic; prune or normalize it first", s.Name())
	}
	alpha := s.Alphabet()
	t := &Table{
		name:       s.Name(),
		init:       int32(s.Init()),
		events:     make([]spec.Event, len(alpha)),
		eventIDs:   make(map[spec.Event]int32, len(alpha)),
		stateNames: make([]string, s.NumStates()),
		numEvents:  int32(len(alpha)),
	}
	copy(t.events, alpha)
	for i, e := range t.events {
		t.eventIDs[e] = int32(i)
	}
	n := s.NumStates()
	t.next = make([]int32, n*len(alpha))
	for i := range t.next {
		t.next[i] = NoState
	}
	t.enabledOff = make([]int32, n+1)
	for st := 0; st < n; st++ {
		t.stateNames[st] = s.StateName(spec.State(st))
		row := t.next[st*len(alpha) : (st+1)*len(alpha)]
		for _, ed := range s.ExtEdges(spec.State(st)) {
			ev := t.eventIDs[ed.Event]
			row[ev] = int32(ed.To)
			t.enabledEvs = append(t.enabledEvs, ev)
		}
		// ExtEdges is sorted by (Event, To) and events intern in alphabet
		// order, so the per-state id run is already ascending.
		t.enabledOff[st+1] = int32(len(t.enabledEvs))
	}
	return t, nil
}

// Name returns the source specification's name.
func (t *Table) Name() string { return t.name }

// NumStates returns the number of states.
func (t *Table) NumStates() int { return len(t.stateNames) }

// NumEvents returns the interned alphabet size.
func (t *Table) NumEvents() int { return int(t.numEvents) }

// Init returns the initial state.
func (t *Table) Init() int32 { return t.init }

// EventID interns an event name, returning NoEvent when it is not in the
// alphabet.
func (t *Table) EventID(e spec.Event) int32 {
	if id, ok := t.eventIDs[e]; ok {
		return id
	}
	return NoEvent
}

// EventName returns the event for an interned id.
func (t *Table) EventName(id int32) spec.Event { return t.events[id] }

// Events returns the interned alphabet in id order. Callers must not modify
// the returned slice.
func (t *Table) Events() []spec.Event { return t.events }

// StateName returns the name of state st.
func (t *Table) StateName(st int32) string { return t.stateNames[st] }

// Step returns the successor of st under event ev, or (NoState, false) when
// ev is not enabled. It never allocates.
func (t *Table) Step(st, ev int32) (int32, bool) {
	nxt := t.next[st*t.numEvents+ev]
	return nxt, nxt != NoState
}

// Enabled returns the event ids enabled in st, ascending — a view into the
// table's CSR storage. It never allocates; callers must not modify it.
func (t *Table) Enabled(st int32) []int32 {
	return t.enabledEvs[t.enabledOff[st]:t.enabledOff[st+1]]
}

// Degree returns the number of events enabled in st without materializing
// the slice header.
func (t *Table) Degree(st int32) int {
	return int(t.enabledOff[st+1] - t.enabledOff[st])
}

// NumTransitions returns the total transition count.
func (t *Table) NumTransitions() int { return len(t.enabledEvs) }

// Spec reconstructs a *spec.Spec equivalent to the compiled machine — the
// inverse of Compile up to canonical form. It is what lets a consumer of a
// table artifact (cmd/convrt running from a .table file) recover a
// reference specification for conformance tracking without shipping the
// .spec beside it.
func (t *Table) Spec() (*spec.Spec, error) {
	b := spec.NewBuilder(t.name)
	for _, name := range t.stateNames {
		b.State(name)
	}
	b.Init(t.stateNames[t.init])
	for st := range t.stateNames {
		for _, ev := range t.Enabled(int32(st)) {
			nxt, _ := t.Step(int32(st), ev)
			b.Ext(t.stateNames[st], t.events[ev], t.stateNames[nxt])
		}
	}
	return b.Build()
}

// validate checks the structural invariants a decoded table must satisfy
// before any of the unchecked-index accessors may be used on it.
func (t *Table) validate() error {
	n := len(t.stateNames)
	if n == 0 {
		return fmt.Errorf("convrt: table has no states")
	}
	if t.init < 0 || int(t.init) >= n {
		return fmt.Errorf("convrt: init state %d out of range [0,%d)", t.init, n)
	}
	if int(t.numEvents) != len(t.events) {
		return fmt.Errorf("convrt: event count %d does not match alphabet size %d", t.numEvents, len(t.events))
	}
	if len(t.next) != n*len(t.events) {
		return fmt.Errorf("convrt: transition table has %d cells, want %d", len(t.next), n*len(t.events))
	}
	if !sort.SliceIsSorted(t.events, func(i, j int) bool { return t.events[i] < t.events[j] }) {
		return fmt.Errorf("convrt: alphabet not sorted")
	}
	for i, e := range t.events {
		if e == "" {
			return fmt.Errorf("convrt: empty event name at id %d", i)
		}
		if i > 0 && t.events[i-1] == e {
			return fmt.Errorf("convrt: duplicate event %q", e)
		}
	}
	seen := make(map[string]bool, n)
	for i, name := range t.stateNames {
		if name == "" {
			return fmt.Errorf("convrt: empty state name at index %d", i)
		}
		if seen[name] {
			return fmt.Errorf("convrt: duplicate state name %q", name)
		}
		seen[name] = true
	}
	for i, nxt := range t.next {
		if nxt != NoState && (nxt < 0 || int(nxt) >= n) {
			return fmt.Errorf("convrt: cell %d: successor %d out of range", i, nxt)
		}
	}
	return nil
}

// finish derives the interning map and the CSR enabled index from the
// decoded core fields (events, stateNames, init, next).
func (t *Table) finish() {
	t.eventIDs = make(map[spec.Event]int32, len(t.events))
	for i, e := range t.events {
		t.eventIDs[e] = int32(i)
	}
	n := len(t.stateNames)
	t.enabledOff = make([]int32, n+1)
	t.enabledEvs = t.enabledEvs[:0]
	for st := 0; st < n; st++ {
		row := t.next[st*int(t.numEvents) : (st+1)*int(t.numEvents)]
		for ev, nxt := range row {
			if nxt != NoState {
				t.enabledEvs = append(t.enabledEvs, int32(ev))
			}
		}
		t.enabledOff[st+1] = int32(len(t.enabledEvs))
	}
}
