package convrt

import (
	"sort"
	"sync"
	"sync/atomic"

	"protoquot/internal/spec"
)

// latencyRingSize is the per-worker step-latency reservoir: the most
// recent samples, overwritten in a ring so a long run reports its
// steady-state tail, not its warmup. A power of two keeps the index math
// to a mask.
const latencyRingSize = 1 << 12

// workerMetrics is one worker's counter shard. Counters are atomics so the
// Runner can snapshot them live while the worker runs; each counter has a
// single writer, so the atomics cost a fenced add and no contention. The
// latency ring is single-writer too; snapshot readers copy racily-but-
// atomically slot by slot, which is sound for quantiles (a torn *set* of
// samples is still a set of genuine samples).
type workerMetrics struct {
	steps      atomic.Int64
	proposed   atomic.Int64
	stale      atomic.Int64
	dropped    atomic.Int64
	corrupted  atomic.Int64
	duplicated atomic.Int64
	reordered  atomic.Int64
	delayed    atomic.Int64
	resets     atomic.Int64
	audits     atomic.Int64
	violations atomic.Int64
	starved    atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64

	latPos  atomic.Int64
	latRing [latencyRingSize]atomic.Int64

	vioMu   *sync.Mutex  // shared across workers; guards vios
	vios    *[]Violation // shared violation detail sink, capped
	vioCap_ int
}

// observeLatency records one executed step's enqueue-to-execute latency.
func (m *workerMetrics) observeLatency(ns int64) {
	p := m.latPos.Add(1) - 1
	m.latRing[p&(latencyRingSize-1)].Store(ns + 1) // +1: 0 means empty slot
}

// recordViolation appends detail for the first few violations run-wide.
func (m *workerMetrics) recordViolation(v Violation) {
	m.vioMu.Lock()
	if len(*m.vios) < m.vioCap_ {
		*m.vios = append(*m.vios, v)
	}
	m.vioMu.Unlock()
}

// Violation is the latched detail of one conformance failure: the compiled
// table and the reference specification disagreed about session behavior.
type Violation struct {
	// Session is the offending session's index.
	Session int32
	// Kind is "safety" (the table executed an event the specification does
	// not enable) or "enabled-set" (a sampled audit found the two enabled
	// sets different).
	Kind string
	// State is the table-side state name at the divergence.
	State string
	// Event is the offending event for safety violations.
	Event spec.Event
	// Steps is how many events the session had executed.
	Steps int
	// Enabled is what the reference specification allows at the divergence;
	// TableEnabled what the compiled table allows (enabled-set kind only).
	Enabled      []spec.Event
	TableEnabled []spec.Event
}

// Metrics is a point-in-time snapshot of a run: throughput counters, the
// session gauges, and the step-latency quantiles from the merged
// per-worker rings. Returned by Runner.Metrics (live) and embedded in the
// final Report.
type Metrics struct {
	// Steps counts executed converter events — the msgs/sec numerator.
	Steps int64
	// Proposed counts offers onto the wire (≥ Steps: retransmissions after
	// loss and discarded stale traffic both offer without executing).
	Proposed int64
	// Stale counts deliveries discarded by selective receive (duplicates
	// and post-gap traffic the current state does not enable).
	Stale int64
	// Fault-class counters, one per runtime.FaultModel class.
	Dropped, Corrupted, Duplicated, Reordered, Delayed int64
	// Resets counts sessions wrapping around after a terminal state.
	Resets int64
	// Audits counts sampled enabled-set conformance audits.
	Audits int64
	// Violations counts latched conformance violations (each also fails
	// its session).
	Violations int64
	// Starved counts sessions failed by the starvation guard.
	Starved int64

	// SessionsActive/Completed/Failed partition the configured sessions.
	SessionsActive    int64
	SessionsCompleted int64
	SessionsFailed    int64

	// P50StepNs/P99StepNs are enqueue-to-execute latency quantiles over
	// the merged rings (0 until the first step lands).
	P50StepNs int64
	P99StepNs int64
}

// merge folds one worker shard into the snapshot.
func (s *Metrics) merge(m *workerMetrics) {
	s.Steps += m.steps.Load()
	s.Proposed += m.proposed.Load()
	s.Stale += m.stale.Load()
	s.Dropped += m.dropped.Load()
	s.Corrupted += m.corrupted.Load()
	s.Duplicated += m.duplicated.Load()
	s.Reordered += m.reordered.Load()
	s.Delayed += m.delayed.Load()
	s.Resets += m.resets.Load()
	s.Audits += m.audits.Load()
	s.Violations += m.violations.Load()
	s.Starved += m.starved.Load()
	s.SessionsCompleted += m.completed.Load()
	s.SessionsFailed += m.failed.Load()
}

// quantiles computes the latency quantiles across worker rings. It copies
// the filled slots, sorts, and indexes — snapshot-path work, never on the
// step path.
func latencyQuantiles(workers []*workerMetrics) (p50, p99 int64) {
	var samples []int64
	for _, m := range workers {
		n := m.latPos.Load()
		if n > latencyRingSize {
			n = latencyRingSize
		}
		for i := int64(0); i < n; i++ {
			if v := m.latRing[i].Load(); v > 0 {
				samples = append(samples, v-1)
			}
		}
	}
	if len(samples) == 0 {
		return 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := func(q float64) int64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return idx(0.50), idx(0.99)
}
