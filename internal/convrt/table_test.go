package convrt

import (
	"bytes"
	"strings"
	"testing"

	"protoquot/internal/spec"
)

// abLoop is a small cyclic converter-shaped spec: two states trading +a/-b
// with a detour, exercising multi-event rows.
func abLoop(t *testing.T) *spec.Spec {
	t.Helper()
	s, err := spec.NewBuilder("ab-loop").
		State("s0").State("s1").State("s2").
		Init("s0").
		Ext("s0", "+a", "s1").
		Ext("s1", "-b", "s0").
		Ext("s1", "+a", "s2").
		Ext("s2", "-b", "s0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// exhaustiveEquiv checks the compiled table against the specification over
// every (state, event) pair, both directions: every spec edge is in the
// table, every table transition is a spec edge, and the CSR enabled index
// agrees cell-for-cell with the spec's enabled sets.
func exhaustiveEquiv(t *testing.T, tab *Table, s *spec.Spec) {
	t.Helper()
	if tab.NumStates() != s.NumStates() {
		t.Fatalf("states: table %d, spec %d", tab.NumStates(), s.NumStates())
	}
	alpha := s.Alphabet()
	if tab.NumEvents() != len(alpha) {
		t.Fatalf("events: table %d, spec %d", tab.NumEvents(), len(alpha))
	}
	for i, e := range alpha {
		if tab.EventName(int32(i)) != e {
			t.Fatalf("event id %d: table %q, spec alphabet %q", i, tab.EventName(int32(i)), e)
		}
		if tab.EventID(e) != int32(i) {
			t.Fatalf("EventID(%q) = %d, want %d", e, tab.EventID(e), i)
		}
	}
	if int32(s.Init()) != tab.Init() {
		t.Fatalf("init: table %d, spec %d", tab.Init(), s.Init())
	}
	transitions := 0
	for st := 0; st < s.NumStates(); st++ {
		if tab.StateName(int32(st)) != s.StateName(spec.State(st)) {
			t.Fatalf("state %d: table %q, spec %q", st, tab.StateName(int32(st)), s.StateName(spec.State(st)))
		}
		// Spec edge map for this state.
		want := map[spec.Event]int32{}
		for _, ed := range s.ExtEdges(spec.State(st)) {
			want[ed.Event] = int32(ed.To)
		}
		transitions += len(want)
		var enabled []int32
		for ev := 0; ev < len(alpha); ev++ {
			nxt, ok := tab.Step(int32(st), int32(ev))
			wantNxt, wantOK := want[alpha[ev]]
			if ok != wantOK {
				t.Fatalf("state %d event %q: table enabled=%v, spec enabled=%v", st, alpha[ev], ok, wantOK)
			}
			if ok {
				if nxt != wantNxt {
					t.Fatalf("state %d event %q: table → %d, spec → %d", st, alpha[ev], nxt, wantNxt)
				}
				enabled = append(enabled, int32(ev))
			}
		}
		got := tab.Enabled(int32(st))
		if len(got) != len(enabled) {
			t.Fatalf("state %d: Enabled() has %d ids, want %d", st, len(got), len(enabled))
		}
		for i := range got {
			if got[i] != enabled[i] {
				t.Fatalf("state %d: Enabled()[%d] = %d, want %d", st, i, got[i], enabled[i])
			}
		}
		if tab.Degree(int32(st)) != len(enabled) {
			t.Fatalf("state %d: Degree() = %d, want %d", st, tab.Degree(int32(st)), len(enabled))
		}
	}
	if tab.NumTransitions() != transitions {
		t.Fatalf("NumTransitions() = %d, want %d", tab.NumTransitions(), transitions)
	}
}

func TestCompileExhaustive(t *testing.T) {
	s := abLoop(t)
	tab, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveEquiv(t, tab, s)
}

func TestCompileRejectsInternalTransitions(t *testing.T) {
	s, err := spec.NewBuilder("internal").
		State("s0").State("s1").Init("s0").
		Ext("s0", "+a", "s1").
		Int("s1", "s0").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(s); err == nil || !strings.Contains(err.Error(), "internal transitions") {
		t.Fatalf("Compile = %v, want internal-transition error", err)
	}
}

func TestCompileRejectsNondeterminism(t *testing.T) {
	s, err := spec.NewBuilder("nondet").
		State("s0").State("s1").State("s2").Init("s0").
		Ext("s0", "+a", "s1").
		Ext("s0", "+a", "s2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(s); err == nil || !strings.Contains(err.Error(), "nondeterministic") {
		t.Fatalf("Compile = %v, want nondeterminism error", err)
	}
}

func TestTableSpecRoundTrip(t *testing.T) {
	s := abLoop(t)
	tab, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := tab.Spec()
	if err != nil {
		t.Fatal(err)
	}
	// Recompiling the reconstruction must yield the same machine.
	tab2, err := Compile(back)
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveEquiv(t, tab2, s)
	if !bytes.Equal(Encode(tab), Encode(tab2)) {
		t.Fatal("Spec() round trip changed the encoded table")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := abLoop(t)
	tab, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(tab)
	if !bytes.Equal(data, Encode(tab)) {
		t.Fatal("Encode is not deterministic")
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveEquiv(t, dec, s)
	if dec.Name() != tab.Name() {
		t.Fatalf("decoded name %q, want %q", dec.Name(), tab.Name())
	}
	if !bytes.Equal(Encode(dec), data) {
		t.Fatal("re-encoding the decoded table changed the bytes")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	s := abLoop(t)
	tab, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	good := string(Encode(tab))
	lines := strings.Split(strings.TrimSuffix(good, "\n"), "\n")

	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad magic", strings.Replace(good, "convrt-table/v1", "convrt-table/v0", 1)},
		{"truncated header", lines[0] + "\n"},
		{"truncated rows", strings.Join(lines[:len(lines)-1], "\n") + "\n"},
		{"trailing data", good + "row . . .\n"},
		{"garbage cell", strings.Replace(good, "row", "row x", 1)},
		{"successor out of range", strings.Replace(good, "row 1 .", "row 99 .", 1)},
		{"implausible shape", strings.Replace(good, "states 3", "states 99999999", 1)},
		{"negative shape", strings.Replace(good, "states 3", "states -1", 1)},
		{"unquoted name", strings.Replace(good, "name \"ab-loop\"", "name ab-loop", 1)},
		{"missing event line", strings.Replace(good, "event \"+a\"\n", "", 1)},
		{"duplicate event", strings.Replace(good, "event \"-b\"", "event \"+a\"", 1)},
		{"unsorted alphabet", strings.Replace(
			strings.Replace(good, "event \"+a\"", "event \"~z\"", 1), "event \"-b\"", "event \"+a\"", 1)},
		{"duplicate state", strings.Replace(good, "state \"s1\"", "state \"s0\"", 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.data == good {
				t.Fatalf("corruption did not apply; fixture layout changed")
			}
			if _, err := Decode([]byte(tc.data)); err == nil {
				t.Fatalf("Decode accepted corrupt input:\n%s", tc.data)
			}
		})
	}
	// The uncorrupted bytes still decode, so the cases above fail for the
	// right reason.
	if _, err := Decode([]byte(good)); err != nil {
		t.Fatalf("control: good input rejected: %v", err)
	}
}

func TestDecodeRejectsWrongSuccessorOnly(t *testing.T) {
	// A flipped successor inside range is undetectable structurally (by
	// design — that is the conformance layer's job); this pins that Decode
	// still accepts it so the test above is honest about what validation
	// covers.
	s := abLoop(t)
	tab, _ := Compile(s)
	data := strings.Replace(string(Encode(tab)), "row 1 .", "row 2 .", 1)
	if data == string(Encode(tab)) {
		t.Fatal("fixture row layout changed; corruption did not apply")
	}
	if _, err := Decode([]byte(data)); err != nil {
		t.Fatalf("in-range successor flip should decode (conformance catches it): %v", err)
	}
}

func TestCompileEncoded(t *testing.T) {
	s := abLoop(t)
	data, err := CompileEncoded(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveEquiv(t, dec, s)
}

func TestTableStepDoesNotAllocate(t *testing.T) {
	s := abLoop(t)
	tab, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	st := tab.Init()
	allocs := testing.AllocsPerRun(1000, func() {
		evs := tab.Enabled(st)
		nxt, ok := tab.Step(st, evs[0])
		if !ok {
			t.Fatal("enabled event refused")
		}
		_ = tab.EventID("+a")
		_ = tab.Degree(st)
		st = nxt
	})
	if allocs != 0 {
		t.Fatalf("Step/Enabled allocated %.1f per run, want 0", allocs)
	}
}
