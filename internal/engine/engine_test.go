package engine

import (
	"math/rand"
	"testing"

	"protoquot/internal/compose"
	"protoquot/internal/core"
	"protoquot/internal/protocols"
	"protoquot/internal/spec"
)

func TestRunnerStepAndEnabled(t *testing.T) {
	s := protocols.Service()
	r := New(s, rand.New(rand.NewSource(1)))
	moves := r.Enabled()
	if len(moves) != 1 || moves[0].Event != "acc" {
		t.Fatalf("Enabled = %v", moves)
	}
	if err := r.Step(moves[0]); err != nil {
		t.Fatal(err)
	}
	if r.StateName() != "v1" {
		t.Errorf("state = %s, want v1", r.StateName())
	}
	// Illegal moves are rejected.
	if err := r.Step(Move{Event: "acc", To: 0}); err == nil {
		t.Error("illegal external move accepted")
	}
	if err := r.Step(Move{To: 0}); err == nil {
		t.Error("illegal internal move accepted")
	}
}

func TestWalkAlternatingService(t *testing.T) {
	s := protocols.Service()
	r := New(s, rand.New(rand.NewSource(2)))
	res := r.Walk(100)
	if res.Deadlocked {
		t.Error("service never deadlocks")
	}
	if res.Steps != 100 || len(res.Trace) != 100 {
		t.Errorf("steps=%d trace=%d", res.Steps, len(res.Trace))
	}
	for i, e := range res.Trace {
		want := spec.Event("acc")
		if i%2 == 1 {
			want = "del"
		}
		if e != want {
			t.Fatalf("trace[%d] = %s, want %s", i, e, want)
		}
	}
}

// The AB system run under the fair scheduler delivers messages despite
// losses: every walk's trace alternates acc/del and both keep happening.
func TestWalkABSystem(t *testing.T) {
	sys := protocols.ABSystem()
	r := New(sys, rand.New(rand.NewSource(3)))
	res := r.Walk(30000)
	if res.Deadlocked {
		t.Fatalf("AB system deadlocked at %s after %v", res.FinalState, res.Trace)
	}
	accs, dels := res.EventCount["acc"], res.EventCount["del"]
	if accs < 10 || dels < 10 {
		t.Errorf("too little progress under fairness: acc=%d del=%d internal=%d",
			accs, dels, res.InternalSteps)
	}
	if accs-dels > 1 || dels > accs {
		t.Errorf("alternation violated: acc=%d del=%d", accs, dels)
	}
	if res.InternalSteps == 0 {
		t.Error("expected internal (loss/forward) activity")
	}
}

// The fairness bias must not starve internal moves: on a spec where only an
// aging internal move leads anywhere, the walk still progresses.
func TestWalkFairness(t *testing.T) {
	b := spec.NewBuilder("f")
	b.Init("a").Ext("a", "spin", "a").Int("a", "b").Ext("b", "done", "b")
	s := b.MustBuild()
	r := New(s, rand.New(rand.NewSource(4)))
	res := r.Walk(5000)
	if res.EventCount["done"] == 0 {
		t.Error("fair scheduler never took the internal escape")
	}
}

func TestWalkDeadlock(t *testing.T) {
	b := spec.NewBuilder("d")
	b.Init("a").Ext("a", "x", "end")
	s := b.MustBuild()
	r := New(s, rand.New(rand.NewSource(5)))
	res := r.Walk(10)
	if !res.Deadlocked || res.FinalState != "end" {
		t.Errorf("expected deadlock at end: %+v", res)
	}
}

func TestReset(t *testing.T) {
	s := protocols.Service()
	r := New(s, rand.New(rand.NewSource(6)))
	r.Walk(7)
	r.Reset()
	if r.State() != s.Init() {
		t.Error("Reset did not return to init")
	}
}

func TestFindDeadlock(t *testing.T) {
	b := spec.NewBuilder("d")
	b.Init("a").Ext("a", "x", "b").Int("b", "c") // c has nothing
	s := b.MustBuild()
	trace, state, ok := FindDeadlock(s)
	if !ok || state != "c" {
		t.Fatalf("FindDeadlock = %v,%s,%v", trace, state, ok)
	}
	if len(trace) != 1 || trace[0] != "x" {
		t.Errorf("witness = %v, want [x]", trace)
	}
	if _, _, ok := FindDeadlock(protocols.ABSystem()); ok {
		t.Error("AB system should be deadlock-free")
	}
}

func TestFindLivelock(t *testing.T) {
	b := spec.NewBuilder("l")
	b.Init("a").Ext("a", "x", "p").Int("p", "q").Int("q", "p")
	s := b.MustBuild()
	state, ok := FindLivelock(s)
	if !ok {
		t.Fatal("livelock not found")
	}
	if state != "p" && state != "q" {
		t.Errorf("state = %s", state)
	}
	if _, ok := FindLivelock(protocols.ABSystem()); ok {
		t.Error("AB system should be livelock-free")
	}
}

func TestCheckInvariant(t *testing.T) {
	sys := protocols.ABSystem()
	// Invariant that holds: every state has some enabled move (no
	// deadlock), phrased as an invariant.
	if tr, state, bad := CheckInvariant(sys, func(s System, st spec.State) bool {
		return len(s.ExtEdges(st)) > 0 || len(s.IntEdges(st)) > 0
	}); bad {
		t.Errorf("unexpected violation at %s via %v", state, tr)
	}
	// Invariant that fails with a shortest witness: "the AB sender never
	// leaves its initial state" is false after one acc.
	tr, state, bad := CheckInvariant(sys, func(s System, st spec.State) bool {
		name := s.StateName(st)
		return name[:2] == "s0"
	})
	if !bad {
		t.Fatal("expected a violation")
	}
	if len(tr) != 1 || tr[0] != "acc" {
		t.Errorf("witness = %v (at %s), want [acc]", tr, state)
	}
}

// End-to-end: run the derived co-located converter inside the full system
// and watch it deliver. This is the simulation counterpart of E9.
func TestWalkDerivedConverterSystem(t *testing.T) {
	b := protocols.ColocatedB()
	res, err := core.Derive(protocols.Service(), b, core.Options{OmitVacuous: true})
	if err != nil {
		t.Fatal(err)
	}
	sys := compose.Pair(b, res.Converter)
	r := New(sys, rand.New(rand.NewSource(7)))
	w := r.Walk(30000)
	if w.Deadlocked {
		t.Fatalf("conversion system deadlocked at %s", w.FinalState)
	}
	if w.EventCount["acc"] < 5 || w.EventCount["del"] < 5 {
		t.Errorf("conversion system made too little progress: %v", w.EventCount)
	}
	if w.EventCount["del"] > w.EventCount["acc"] {
		t.Error("delivered more than accepted — exactly-once broken")
	}
}

// TestRunnerOverIndexedComposition drives the engine from a fused
// index-space composition without materializing a *spec.Spec: the System
// interface is the contract that makes that possible. Walk traces are not
// required to match the eager composition move for move (edge sort orders
// use each representation's own state numbering), so the assertions are
// representation-independent: liveness of the walk, exactly-once semantics,
// and agreement on deadlock freedom.
func TestRunnerOverIndexedComposition(t *testing.T) {
	x := compose.MustIndexedMany(protocols.ABSender(), protocols.ABChannel(), protocols.ABReceiver())
	r := New(x, rand.New(rand.NewSource(1989)))
	w := r.Walk(20000)
	if w.Deadlocked {
		t.Fatalf("indexed AB system deadlocked at %s", w.FinalState)
	}
	if w.EventCount["acc"] < 5 || w.EventCount["del"] < 5 {
		t.Errorf("indexed AB system made too little progress: %v", w.EventCount)
	}
	if w.EventCount["del"] > w.EventCount["acc"] {
		t.Error("delivered more than accepted — exactly-once broken")
	}
	if _, st, found := FindDeadlock(x); found {
		t.Errorf("FindDeadlock over indexed composition found %s; eager system is deadlock-free", st)
	}
	if tr, st, bad := CheckInvariant(x, func(s System, st spec.State) bool {
		return len(s.ExtEdges(st))+len(s.IntEdges(st)) > 0
	}); bad {
		t.Errorf("invariant violated at %s via %v", st, tr)
	}
}
