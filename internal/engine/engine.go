// Package engine executes closed systems of composed specifications: it
// steps a specification's global state, runs random walks under the
// paper's fairness assumption for internal nondeterminism, detects
// deadlocks and livelocks, and records traces. It is the simulation-based
// counterpart to the exhaustive checks in package sat: the satisfaction
// checker proves properties, the engine demonstrates runs — for examples,
// for statistics (how often does loss force a retransmission?), and as an
// independent sanity check on derived converters.
package engine

import (
	"fmt"
	"math/rand"

	"protoquot/internal/spec"
)

// System is the read-only stepping surface the engine needs: initial
// state, outgoing edges, and names for reporting. Both *spec.Spec and
// *compose.Indexed satisfy it, so large composed environments can be
// simulated straight from the fused index-space composition without ever
// materializing a string-keyed *spec.Spec. ExtEdges and IntEdges must
// return stable orders (the sorted orders both implementations guarantee);
// Enabled and the fairness scheduler inherit reproducibility from them.
type System interface {
	Name() string
	NumStates() int
	Init() spec.State
	Alphabet() []spec.Event
	ExtEdges(st spec.State) []spec.ExtEdge
	IntEdges(st spec.State) []spec.State
	StateName(st spec.State) string
}

// hasInt reports whether (from, to) is an internal transition of s.
func hasInt(s System, from, to spec.State) bool {
	for _, t := range s.IntEdges(from) {
		if t == to {
			return true
		}
	}
	return false
}

// hasExt reports whether (from, e, to) is an external transition of s.
func hasExt(s System, from spec.State, e spec.Event, to spec.State) bool {
	for _, ed := range s.ExtEdges(from) {
		if ed.Event == e && ed.To == to {
			return true
		}
	}
	return false
}

// Move is one enabled step of the system: either an external event or an
// internal transition.
type Move struct {
	// Event is the external event, or "" for an internal move.
	Event spec.Event
	// To is the destination state.
	To spec.State
}

// Internal reports whether the move is an internal transition.
func (m Move) Internal() bool { return m.Event == "" }

// Runner executes one System (usually a composition).
type Runner struct {
	s   System
	cur spec.State
	rng *rand.Rand

	// Fairness bookkeeping: age counts how many times each currently
	// enabled internal move has been passed over; the scheduler must
	// eventually pick old moves, implementing the paper's assumption that
	// a repeatedly enabled internal transition eventually occurs.
	age map[Move]int
}

// New returns a Runner at the system's initial state. The rng may
// be shared only by one Runner.
func New(s System, rng *rand.Rand) *Runner {
	return &Runner{s: s, cur: s.Init(), rng: rng, age: make(map[Move]int)}
}

// State returns the current state.
func (r *Runner) State() spec.State { return r.cur }

// StateName returns the current state's name.
func (r *Runner) StateName() string { return r.s.StateName(r.cur) }

// Enabled returns every enabled move in the current state, internal moves
// first, in a stable order.
func (r *Runner) Enabled() []Move {
	var out []Move
	for _, t := range r.s.IntEdges(r.cur) {
		out = append(out, Move{To: t})
	}
	for _, ed := range r.s.ExtEdges(r.cur) {
		out = append(out, Move{Event: ed.Event, To: ed.To})
	}
	return out
}

// Deadlocked reports whether no move is enabled.
func (r *Runner) Deadlocked() bool { return len(r.Enabled()) == 0 }

// Step applies one move, which must currently be enabled.
func (r *Runner) Step(m Move) error {
	if m.Internal() {
		if !hasInt(r.s, r.cur, m.To) {
			return fmt.Errorf("engine: internal move to %s not enabled in %s",
				r.s.StateName(m.To), r.StateName())
		}
	} else if !hasExt(r.s, r.cur, m.Event, m.To) {
		return fmt.Errorf("engine: move %s to %s not enabled in %s",
			m.Event, r.s.StateName(m.To), r.StateName())
	}
	r.cur = m.To
	return nil
}

// pickFair chooses a move with a fairness bias: every time an internal move
// is passed over its age grows, and the choice is weighted by age, so no
// internal move can be neglected forever (with probability one).
func (r *Runner) pickFair(moves []Move) Move {
	weights := make([]int, len(moves))
	total := 0
	for i, m := range moves {
		w := 1
		if m.Internal() {
			w += r.age[m]
		}
		weights[i] = w
		total += w
	}
	pick := r.rng.Intn(total)
	idx := 0
	for i, w := range weights {
		if pick < w {
			idx = i
			break
		}
		pick -= w
	}
	chosen := moves[idx]
	for _, m := range moves {
		if m.Internal() {
			if m == chosen {
				delete(r.age, m)
			} else {
				r.age[m]++
			}
		}
	}
	return chosen
}

// WalkResult summarizes a random walk.
type WalkResult struct {
	// Trace is the external trace observed.
	Trace []spec.Event
	// Steps counts all moves taken, internal included.
	Steps int
	// InternalSteps counts internal moves.
	InternalSteps int
	// Deadlocked is true if the walk ended with no enabled move.
	Deadlocked bool
	// FinalState names the state where the walk ended.
	FinalState string
	// EventCount tallies external events by name.
	EventCount map[spec.Event]int
}

// Walk runs a fair random walk for at most maxSteps moves (or until
// deadlock) and returns its summary. The Runner continues from its current
// state, so successive walks extend one run.
func (r *Runner) Walk(maxSteps int) WalkResult {
	res := WalkResult{EventCount: make(map[spec.Event]int)}
	for res.Steps < maxSteps {
		moves := r.Enabled()
		if len(moves) == 0 {
			res.Deadlocked = true
			break
		}
		m := r.pickFair(moves)
		_ = r.Step(m)
		res.Steps++
		if m.Internal() {
			res.InternalSteps++
		} else {
			res.Trace = append(res.Trace, m.Event)
			res.EventCount[m.Event]++
		}
	}
	res.FinalState = r.StateName()
	return res
}

// Reset returns the runner to the initial state and clears fairness state.
func (r *Runner) Reset() {
	r.cur = r.s.Init()
	r.age = make(map[Move]int)
}

// FindDeadlock searches the reachable state space for a state with no
// outgoing moves and returns a shortest witness trace to it, or ok=false
// if the system is deadlock-free. Unlike sat.Progress this ignores any
// service; it answers the bare question "can the closed system get stuck?"
func FindDeadlock(s System) (trace []spec.Event, state string, ok bool) {
	type nd struct {
		st     spec.State
		parent int
		ev     spec.Event
		silent bool
	}
	var nodes []nd
	seen := map[spec.State]bool{s.Init(): true}
	nodes = append(nodes, nd{st: s.Init(), parent: -1, silent: true})
	for i := 0; i < len(nodes); i++ {
		cur := nodes[i]
		ext := s.ExtEdges(cur.st)
		intl := s.IntEdges(cur.st)
		if len(ext) == 0 && len(intl) == 0 {
			var rev []spec.Event
			for j := i; j >= 0; j = nodes[j].parent {
				if !nodes[j].silent {
					rev = append(rev, nodes[j].ev)
				}
			}
			trace = make([]spec.Event, len(rev))
			for k := range rev {
				trace[k] = rev[len(rev)-1-k]
			}
			return trace, s.StateName(cur.st), true
		}
		for _, t := range intl {
			if !seen[t] {
				seen[t] = true
				nodes = append(nodes, nd{st: t, parent: i, silent: true})
			}
		}
		for _, ed := range ext {
			if !seen[ed.To] {
				seen[ed.To] = true
				nodes = append(nodes, nd{st: ed.To, parent: i, ev: ed.Event})
			}
		}
	}
	return nil, "", false
}

// CheckInvariant explores the whole reachable state space and applies the
// predicate to every state; the first violating state is returned together
// with a shortest witness trace. It is the library's bounded
// model-checking helper for ad-hoc state properties (the satisfaction
// checker covers trace/progress properties against a service spec).
func CheckInvariant(s System, inv func(System, spec.State) bool) (trace []spec.Event, state string, violated bool) {
	type nd struct {
		st     spec.State
		parent int
		ev     spec.Event
		silent bool
	}
	var nodes []nd
	seen := map[spec.State]bool{s.Init(): true}
	nodes = append(nodes, nd{st: s.Init(), parent: -1, silent: true})
	for i := 0; i < len(nodes); i++ {
		cur := nodes[i]
		if !inv(s, cur.st) {
			var rev []spec.Event
			for j := i; j >= 0; j = nodes[j].parent {
				if !nodes[j].silent {
					rev = append(rev, nodes[j].ev)
				}
			}
			trace = make([]spec.Event, len(rev))
			for k := range rev {
				trace[k] = rev[len(rev)-1-k]
			}
			return trace, s.StateName(cur.st), true
		}
		for _, t := range s.IntEdges(cur.st) {
			if !seen[t] {
				seen[t] = true
				nodes = append(nodes, nd{st: t, parent: i, silent: true})
			}
		}
		for _, ed := range s.ExtEdges(cur.st) {
			if !seen[ed.To] {
				seen[ed.To] = true
				nodes = append(nodes, nd{st: ed.To, parent: i, ev: ed.Event})
			}
		}
	}
	return nil, "", false
}

// FindLivelock searches for a reachable divergence: a sink set (terminal
// λ-SCC) that enables no external event. Under fairness such a set traps
// the system forever with no observable progress.
func FindLivelock(s *spec.Spec) (state string, ok bool) {
	for _, st := range s.Reachable() {
		if s.Sink(st) && len(s.TauStar(st)) == 0 &&
			(len(s.IntEdges(st)) > 0 || len(s.ExtEdges(st)) == 0) {
			// Exclude plain deadlocks (no internal moves at all) — those
			// are FindDeadlock's domain — unless the state truly cycles.
			if len(s.IntEdges(st)) > 0 {
				return s.StateName(st), true
			}
		}
	}
	return "", false
}
