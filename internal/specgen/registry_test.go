package specgen

import (
	"strings"
	"testing"
)

func TestRegisterRejectsDuplicates(t *testing.T) {
	// The builtins are registered from init; a second registration of any
	// of them must be an explicit error, not a silent overwrite.
	err := Register("chain", sized("chain", Chain))
	if err == nil {
		t.Fatal("duplicate registration of \"chain\" should fail")
	}
	if !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate error should say so, got: %v", err)
	}
	// The original constructor must still be in place.
	f, err := ParseFamily("chain(2)")
	if err != nil || f.Name != "chain(2)" {
		t.Fatalf("original constructor damaged by rejected duplicate: %v", err)
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister on a duplicate kind should panic")
		}
	}()
	MustRegister("ring", sized("ring", Ring))
}

func TestRegisterValidatesInputs(t *testing.T) {
	if err := Register("", sized("x", Chain)); err == nil {
		t.Error("empty kind should be rejected")
	}
	if err := Register("Bad7", sized("x", Chain)); err == nil {
		t.Error("non-lowercase-word kind should be rejected")
	}
	if err := Register("nilfn", nil); err == nil {
		t.Error("nil constructor should be rejected")
	}
}

func TestRegistryResolvesCustomKind(t *testing.T) {
	MustRegister("regtestonly", func(n int) (Family, error) {
		f := Chain(1)
		f.Name = "regtestonly(1)"
		return f, nil
	})
	f, err := ParseFamily("regtestonly(1)")
	if err != nil {
		t.Fatalf("ParseFamily on a custom kind: %v", err)
	}
	if f.Name != "regtestonly(1)" || f.Service == nil || len(f.Components) == 0 {
		t.Errorf("custom kind returned a degenerate family: %+v", f.Name)
	}
	found := false
	for _, k := range Kinds() {
		if k == "regtestonly" {
			found = true
		}
	}
	if !found {
		t.Error("Kinds() should list the custom kind")
	}
}

func TestKindsSortedAndContainBuiltins(t *testing.T) {
	ks := Kinds()
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("Kinds() not strictly sorted: %v", ks)
		}
	}
	for _, want := range []string{"chain", "chaindrop", "ring"} {
		ok := false
		for _, k := range ks {
			if k == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("builtin kind %q missing from %v", want, ks)
		}
	}
}

func TestParseFamilyErrors(t *testing.T) {
	if _, err := ParseFamily("nosuchkind(3)"); err == nil {
		t.Error("unknown kind should fail")
	} else if !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-kind error should list registered kinds, got: %v", err)
	}
	if _, err := ParseFamily("chain"); err == nil {
		t.Error("missing size should fail")
	}
	if _, err := ParseFamily("chain(0)"); err == nil {
		t.Error("chain(0) should fail with an error, not panic")
	}
}
