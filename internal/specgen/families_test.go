package specgen

import (
	"testing"

	"protoquot/internal/compose"
	"protoquot/internal/spec"
)

// The family tests validate structure only (composability, determinism,
// normal form); end-to-end derivability is asserted at the protoquot level
// where internal/core is importable without a dependency cycle.

func composeFamily(t *testing.T, f Family) *spec.Spec {
	t.Helper()
	b, err := compose.Many(f.Components...)
	if err != nil {
		t.Fatalf("%s: compose: %v", f.Name, err)
	}
	return b
}

func TestChainFamilyShape(t *testing.T) {
	for n := 1; n <= 4; n++ {
		f := Chain(n)
		if err := f.Service.IsNormalForm(); err != nil {
			t.Fatalf("%s: service not in normal form: %v", f.Name, err)
		}
		b := composeFamily(t, f)
		// Converter-facing alphabet: exactly {+xn, -y}.
		var intl []spec.Event
		for _, e := range b.Alphabet() {
			if !f.Service.HasEvent(e) {
				intl = append(intl, e)
			}
		}
		if len(intl) != 2 {
			t.Fatalf("%s: Int alphabet %v, want 2 events", f.Name, intl)
		}
		// Every fill pattern of the 2n+1 pipeline slots is reachable, plus
		// the sender/receiver phases: |S_B| = 2^(2n+2).
		want := 1 << (2*n + 2)
		if b.NumStates() != want {
			t.Errorf("%s: |S_B| = %d, want %d", f.Name, b.NumStates(), want)
		}
	}
}

func TestRingFamilyShape(t *testing.T) {
	// n is capped at 3 here: the pairwise left fold explodes on open rings
	// (every intermediate product is unconstrained until the ring closes),
	// which is the very hotspot the fused indexed composition removes —
	// larger n is covered by the indexed-path tests at the protoquot level.
	for n := 1; n <= 3; n++ {
		f := Ring(n)
		if err := f.Service.IsNormalForm(); err != nil {
			t.Fatalf("%s: service not in normal form: %v", f.Name, err)
		}
		if got, want := f.Service.NumStates(), 2*n; got != want {
			t.Fatalf("%s: service has %d states, want %d", f.Name, got, want)
		}
		b := composeFamily(t, f)
		var intl []spec.Event
		for _, e := range b.Alphabet() {
			if !f.Service.HasEvent(e) {
				intl = append(intl, e)
			}
		}
		if len(intl) != 2*n {
			t.Fatalf("%s: Int alphabet has %d events, want %d", f.Name, len(intl), 2*n)
		}
	}
}

// Families are deterministic: two independent constructions are identical
// down to the Format listing of every machine.
func TestFamiliesDeterministic(t *testing.T) {
	for _, mk := range []func(int) Family{Chain, Ring} {
		f1, f2 := mk(3), mk(3)
		if f1.Name != f2.Name {
			t.Fatalf("names differ: %s vs %s", f1.Name, f2.Name)
		}
		if f1.Service.Format() != f2.Service.Format() {
			t.Errorf("%s: service not deterministic", f1.Name)
		}
		if len(f1.Components) != len(f2.Components) {
			t.Fatalf("%s: component counts differ", f1.Name)
		}
		for i := range f1.Components {
			if f1.Components[i].Format() != f2.Components[i].Format() {
				t.Errorf("%s: component %d not deterministic", f1.Name, i)
			}
		}
	}
}
