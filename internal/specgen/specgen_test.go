package specgen

import (
	"math/rand"
	"testing"

	"protoquot/internal/spec"
)

func TestRandomBuildsAndConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := Random(rng, Default)
		if s.NumStates() < 1 {
			t.Fatal("empty spec")
		}
		if len(s.Reachable()) != s.NumStates() {
			t.Fatalf("Connected config produced unreachable states: %s", s.Format())
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		s := RandomDeterministic(rng, Default)
		if !s.Deterministic() {
			t.Fatalf("not deterministic: %s", s.Format())
		}
		if err := s.IsNormalForm(); err != nil {
			t.Fatalf("deterministic spec not normal form: %v", err)
		}
	}
}

func TestRandomTraceIsTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		s := Random(rng, Default)
		tr := RandomTrace(rng, s, 6)
		if !s.HasTrace(tr) {
			t.Fatalf("RandomTrace produced non-trace %v of\n%s", tr, s.Format())
		}
	}
}

func TestRandomRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{MaxStates: 3, MaxEvents: 2, ExtDensity: 1, IntDensity: 1, Connected: true}
	for i := 0; i < 50; i++ {
		s := Random(rng, cfg)
		if s.NumStates() > 3 {
			t.Fatalf("too many states: %d", s.NumStates())
		}
		if len(s.Alphabet()) > 2 {
			t.Fatalf("too many events: %v", s.Alphabet())
		}
	}
}

// Property: Normalize preserves trace membership on random specs and random
// traces (both positive and negative samples).
func TestPropNormalizePreservesTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		s := Random(rng, Default)
		d := s.Normalize()
		for j := 0; j < 20; j++ {
			tr := RandomTrace(rng, s, 5)
			if !d.HasTrace(tr) {
				t.Fatalf("Normalize lost trace %v", tr)
			}
		}
		// Random event strings; membership must agree in both directions.
		al := s.Alphabet()
		for j := 0; j < 20; j++ {
			tr := make([]spec.Event, rng.Intn(5))
			for k := range tr {
				tr[k] = al[rng.Intn(len(al))]
			}
			if s.HasTrace(tr) != d.HasTrace(tr) {
				t.Fatalf("trace membership differs for %v", tr)
			}
		}
	}
}

// Property: Minimize preserves trace membership and sink acceptance at the
// initial state.
func TestPropMinimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		s := Random(rng, Default)
		m := s.Minimize()
		if m.NumStates() > s.NumStates() {
			t.Fatalf("Minimize grew the spec: %d > %d", m.NumStates(), s.NumStates())
		}
		al := s.Alphabet()
		for j := 0; j < 30; j++ {
			tr := make([]spec.Event, rng.Intn(5))
			for k := range tr {
				tr[k] = al[rng.Intn(len(al))]
			}
			if s.HasTrace(tr) != m.HasTrace(tr) {
				t.Fatalf("Minimize changed membership of %v\noriginal:\n%s\nminimized:\n%s",
					tr, s.Format(), m.Format())
			}
		}
		// The bare Sink predicate is not bisimulation-invariant (collapsing
		// a λ-chain into its target cycle makes the merged state stable),
		// but the semantic notion — the family of acceptance sets — is.
		as, am := s.AcceptanceSets(s.Init()), m.AcceptanceSets(m.Init())
		if len(as) != len(am) {
			t.Fatalf("Minimize changed acceptance sets: %v vs %v\noriginal:\n%s\nminimized:\n%s",
				as, am, s.Format(), m.Format())
		}
		for k := range as {
			if len(as[k]) != len(am[k]) {
				t.Fatalf("Minimize changed acceptance set %d: %v vs %v", k, as[k], am[k])
			}
			for j := range as[k] {
				if as[k][j] != am[k][j] {
					t.Fatalf("Minimize changed acceptance set %d: %v vs %v", k, as[k], am[k])
				}
			}
		}
	}
}

// Property: CompressTau preserves trace membership and the acceptance-set
// family at the initial state on random specs.
func TestPropCompressTauPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 120; i++ {
		s := Random(rng, Default)
		c := s.CompressTau()
		if c.NumStates() > s.NumStates() {
			t.Fatalf("CompressTau grew the spec")
		}
		al := s.Alphabet()
		for j := 0; j < 30; j++ {
			tr := make([]spec.Event, rng.Intn(5))
			for k := range tr {
				tr[k] = al[rng.Intn(len(al))]
			}
			if s.HasTrace(tr) != c.HasTrace(tr) {
				t.Fatalf("CompressTau changed membership of %v\noriginal:\n%s\ncompressed:\n%s",
					tr, s.Format(), c.Format())
			}
		}
		as, ac := s.AcceptanceSets(s.Init()), c.AcceptanceSets(c.Init())
		if len(as) != len(ac) {
			t.Fatalf("acceptance family changed: %v vs %v\noriginal:\n%s\ncompressed:\n%s",
				as, ac, s.Format(), c.Format())
		}
		for k := range as {
			if len(as[k]) != len(ac[k]) {
				t.Fatalf("acceptance set %d changed: %v vs %v", k, as[k], ac[k])
			}
			for j := range as[k] {
				if as[k][j] != ac[k][j] {
					t.Fatalf("acceptance set %d changed: %v vs %v", k, as[k], ac[k])
				}
			}
		}
	}
}

// Property: λ*-closure is transitive on random specs.
func TestPropClosureTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		s := Random(rng, Default)
		for st := 0; st < s.NumStates(); st++ {
			for _, u := range s.LambdaClosure(spec.State(st)) {
				for _, v := range s.LambdaClosure(u) {
					if !s.CanReachInternally(spec.State(st), v) {
						t.Fatalf("closure not transitive: %d->%d->%d", st, u, v)
					}
				}
			}
		}
	}
}

// Property: τ* equals the union of τ over the λ*-closure.
func TestPropTauStarIsClosureUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		s := Random(rng, Default)
		for st := 0; st < s.NumStates(); st++ {
			want := make(map[spec.Event]bool)
			for _, u := range s.LambdaClosure(spec.State(st)) {
				for _, e := range s.Tau(u) {
					want[e] = true
				}
			}
			got := s.TauStar(spec.State(st))
			if len(got) != len(want) {
				t.Fatalf("TauStar mismatch at state %d: got %v", st, got)
			}
			for _, e := range got {
				if !want[e] {
					t.Fatalf("TauStar has extra event %v", e)
				}
			}
		}
	}
}
