// Deterministic sized specification families for scaling benchmarks.
//
// Random specs (specgen.Random) give property tests breadth, but scaling
// measurements need reproducible large instances whose size is a function
// of a single parameter. The two families here are protocol-conversion
// problems by construction — each pairs a service with a list of component
// machines whose composition is the quotient's environment B, with the
// converter bridging two mismatched channel alphabets — so the full
// pipeline (compose + safety + progress) is exercised, not just the safety
// phase:
//
//   - Chain(n) is a store-and-forward pipeline: a sender feeds message
//     frames through n capacity-1 hop channels (joined by forwarders) to
//     the converter, which must re-frame them onto a differently named
//     delivery channel. The reachable environment grows like 2^(2n) (every
//     fill pattern of the 2n+1 slots), while the converter interface stays
//     two events wide — a deep, narrow instance dominated by pair-set
//     closure work.
//   - Ring(n) is a round-robin token ring: n stations take turns (enforced
//     by a circulating token) submitting a request frame the converter must
//     answer on a per-station response channel. The environment grows
//     polynomially but the converter interface is 2n events wide — a
//     shallow, wide instance dominated by frontier fan-out and the
//     progress phase's composite ready sets.
//
// Both families are fully deterministic: no randomness, and the component
// lists are emitted in a fixed order, so state counts, derivation
// statistics, and the derived converters are stable across runs and
// machines.
package specgen

import (
	"fmt"

	"protoquot/internal/spec"
)

// Family is one sized instance: a service specification and the component
// machines whose composition forms the quotient's environment B.
type Family struct {
	// Name identifies the instance, e.g. "chain(4)".
	Name string
	// Service is the quotient's service input A, in normal form.
	Service *spec.Spec
	// Components compose (pairwise-disjoint interfaces) into B.
	Components []*spec.Spec
}

// Chain returns the store-and-forward pipeline family with n ≥ 1 hop
// channels on the sending side.
//
// Topology:
//
//	sender ─C1─ fwd1 ─C2─ … ─Cn─ [converter] ─D─ receiver
//
// The sender accepts a message (acc) and pushes a frame -x1 into hop
// channel C1; forwarder i relays +xi → -x(i+1); the converter takes +xn
// and must emit -y on the mismatched delivery channel D, from which the
// receiver delivers (del). Every link has capacity one, so up to 2n+3
// messages are in flight at once (sender slot, n channels, n−1 forwarders,
// converter, delivery channel, receiver slot) and the service is the
// window-(2n+3) counter over acc/del.
func Chain(n int) Family { return chain(n, false) }

// ChainDrop is Chain with one extra converter-facing event: the delivery
// channel also accepts a -ydrop frame that wedges it permanently. Dropping
// is always safe (the service never observes it) but never live — after a
// drop no message can ever be delivered again, so the progress phase must
// discover and remove the entire post-drop region and re-examine its
// predecessor closure. The family therefore exercises multi-sweep removal,
// invalidation, and ready-set memoization, which the pure Chain (whose
// progress phase is a single clean sweep) does not.
func ChainDrop(n int) Family { return chain(n, true) }

func chain(n int, drop bool) Family {
	if n < 1 {
		panic("specgen: Chain needs n >= 1")
	}
	window := 2*n + 3
	sb := spec.NewBuilder(fmt.Sprintf("ChainService(%d)", n))
	sb.Init("w0")
	for i := 0; i < window; i++ {
		sb.Ext(fmt.Sprintf("w%d", i), "acc", fmt.Sprintf("w%d", i+1))
		sb.Ext(fmt.Sprintf("w%d", i+1), "del", fmt.Sprintf("w%d", i))
	}
	service := sb.MustBuild()

	xSend := func(i int) spec.Event { return spec.Event(fmt.Sprintf("-x%d", i)) }
	xRecv := func(i int) spec.Event { return spec.Event(fmt.Sprintf("+x%d", i)) }

	var comps []*spec.Spec
	snd := spec.NewBuilder("snd")
	snd.Init("s0").Ext("s0", "acc", "s1").Ext("s1", xSend(1), "s0")
	comps = append(comps, snd.MustBuild())
	for i := 1; i <= n; i++ {
		ch := spec.NewBuilder(fmt.Sprintf("C%d", i))
		ch.Init("e").Ext("e", xSend(i), "f").Ext("f", xRecv(i), "e")
		comps = append(comps, ch.MustBuild())
		if i < n {
			fw := spec.NewBuilder(fmt.Sprintf("fwd%d", i))
			fw.Init("g0").Ext("g0", xRecv(i), "g1").Ext("g1", xSend(i+1), "g0")
			comps = append(comps, fw.MustBuild())
		}
	}
	del := spec.NewBuilder("D")
	del.Init("e").Ext("e", "-y", "f").Ext("f", "+y", "e")
	if drop {
		// -ydrop wedges the channel: a dead state with no exits. Dropping
		// is safe (the service never observes it) but strands every
		// undelivered message, so the progress phase must remove the whole
		// post-drop region. A plain lossy arc (drop and recover) would not
		// do: the maximal converter could compensate by conjuring a fresh
		// -y frame, and no state would ever be bad.
		del.Ext("e", "-ydrop", "g")
	}
	comps = append(comps, del.MustBuild())
	rcv := spec.NewBuilder("rcv")
	rcv.Init("r0").Ext("r0", "+y", "r1").Ext("r1", "del", "r0")
	comps = append(comps, rcv.MustBuild())

	name := fmt.Sprintf("chain(%d)", n)
	if drop {
		name = fmt.Sprintf("chaindrop(%d)", n)
	}
	return Family{Name: name, Service: service, Components: comps}
}

// Ring returns the round-robin token-ring family with n ≥ 1 stations.
//
// A single token circulates through capacity-1 token channels T0…T(n−1)
// (T0 starts full). Station i, on receiving the token, accepts a user
// request (acc.i), sends frame -u.i toward the converter, waits for the
// converter's answer frame +v.i on the mismatched response channel,
// delivers (del.i), and passes the token on. The service is the length-2n
// cycle acc.0 del.0 acc.1 del.1 … — stations proceed strictly round-robin.
// The converter interface is {+u.i, -v.i : i < n}.
func Ring(n int) Family {
	if n < 1 {
		panic("specgen: Ring needs n >= 1")
	}
	ev := func(kind string, i int) spec.Event { return spec.Event(fmt.Sprintf("%s.%d", kind, i)) }

	sb := spec.NewBuilder(fmt.Sprintf("RingService(%d)", n))
	sb.Init("a0.0")
	for i := 0; i < n; i++ {
		next := fmt.Sprintf("a%d.0", (i+1)%n)
		sb.Ext(fmt.Sprintf("a%d.0", i), ev("acc", i), fmt.Sprintf("a%d.1", i))
		sb.Ext(fmt.Sprintf("a%d.1", i), ev("del", i), next)
	}
	service := sb.MustBuild()

	var comps []*spec.Spec
	for i := 0; i < n; i++ {
		st := spec.NewBuilder(fmt.Sprintf("station%d", i))
		s := func(j int) string { return fmt.Sprintf("k%d.%d", i, j) }
		st.Init(s(0))
		st.Ext(s(0), ev("+t", i), s(1))
		st.Ext(s(1), ev("acc", i), s(2))
		st.Ext(s(2), ev("-u", i), s(3))
		st.Ext(s(3), ev("+v", i), s(4))
		st.Ext(s(4), ev("del", i), s(5))
		st.Ext(s(5), ev("-t", (i+1)%n), s(0))
		comps = append(comps, st.MustBuild())

		tk := spec.NewBuilder(fmt.Sprintf("token%d", i))
		if i == 0 {
			// T0 starts full: the token begins at station 0's doorstep.
			tk.Init("full").Ext("full", ev("+t", i), "empty").Ext("empty", ev("-t", i), "full")
		} else {
			tk.Init("empty").Ext("empty", ev("-t", i), "full").Ext("full", ev("+t", i), "empty")
		}
		comps = append(comps, tk.MustBuild())

		uch := spec.NewBuilder(fmt.Sprintf("U%d", i))
		uch.Init("e").Ext("e", ev("-u", i), "f").Ext("f", ev("+u", i), "e")
		comps = append(comps, uch.MustBuild())

		vch := spec.NewBuilder(fmt.Sprintf("V%d", i))
		vch.Init("e").Ext("e", ev("-v", i), "f").Ext("f", ev("+v", i), "e")
		comps = append(comps, vch.MustBuild())
	}

	return Family{Name: fmt.Sprintf("ring(%d)", n), Service: service, Components: comps}
}
