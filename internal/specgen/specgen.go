// Package specgen generates pseudo-random specifications for property-based
// testing. It is part of the library (not a _test file) so that every
// package's tests, as well as fuzzing harnesses, can share one well-tested
// generator.
package specgen

import (
	"fmt"
	"math/rand"

	"protoquot/internal/spec"
)

// Config bounds the shape of generated specs.
type Config struct {
	MaxStates   int     // ≥ 1; number of states is 1..MaxStates
	MaxEvents   int     // ≥ 1; alphabet size is 1..MaxEvents
	ExtDensity  float64 // expected external edges per (state, event) pair
	IntDensity  float64 // expected internal edges per state
	Connected   bool    // force every state reachable from the initial state
	EventPrefix string  // event names are EventPrefix + index (default "e")
}

// Default is a reasonable configuration for library-wide property tests.
var Default = Config{MaxStates: 8, MaxEvents: 4, ExtDensity: 0.3, IntDensity: 0.4, Connected: true}

// Random generates a random specification using rng. The result always
// builds successfully.
func Random(rng *rand.Rand, cfg Config) *spec.Spec {
	if cfg.MaxStates < 1 {
		cfg.MaxStates = 1
	}
	if cfg.MaxEvents < 1 {
		cfg.MaxEvents = 1
	}
	prefix := cfg.EventPrefix
	if prefix == "" {
		prefix = "e"
	}
	n := 1 + rng.Intn(cfg.MaxStates)
	k := 1 + rng.Intn(cfg.MaxEvents)

	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	events := make([]spec.Event, k)
	for i := range events {
		events[i] = spec.Event(fmt.Sprintf("%s%d", prefix, i))
	}

	b := spec.NewBuilder(fmt.Sprintf("rand%d", rng.Intn(1<<30)))
	for _, e := range events {
		b.Event(e)
	}
	b.Init(names[0])
	for _, nm := range names {
		b.State(nm)
	}
	if cfg.Connected {
		// Spanning arborescence: each state i>0 gets an in-edge from a
		// lower-numbered state, external or internal at random.
		for i := 1; i < n; i++ {
			from := names[rng.Intn(i)]
			if rng.Float64() < 0.7 {
				b.Ext(from, events[rng.Intn(k)], names[i])
			} else {
				b.Int(from, names[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, e := range events {
			if rng.Float64() < cfg.ExtDensity {
				b.Ext(names[i], e, names[rng.Intn(n)])
			}
		}
		if rng.Float64() < cfg.IntDensity {
			b.Int(names[i], names[rng.Intn(n)])
		}
	}
	return b.MustBuild()
}

// RandomDeterministic generates a random deterministic specification (no
// internal transitions, at most one successor per event), which is always
// in normal form.
func RandomDeterministic(rng *rand.Rand, cfg Config) *spec.Spec {
	cfg.IntDensity = 0
	s := Random(rng, cfg)
	// Rebuild keeping only the first edge per (state, event).
	b := spec.NewBuilder(s.Name() + ".det")
	for _, e := range s.Alphabet() {
		b.Event(e)
	}
	b.Init(s.StateName(s.Init()))
	for st := 0; st < s.NumStates(); st++ {
		b.State(s.StateName(spec.State(st)))
		seen := make(map[spec.Event]bool)
		for _, ed := range s.ExtEdges(spec.State(st)) {
			if seen[ed.Event] {
				continue
			}
			seen[ed.Event] = true
			b.Ext(s.StateName(spec.State(st)), ed.Event, s.StateName(ed.To))
		}
	}
	return b.MustBuild()
}

// RandomTrace returns a random trace of s with length ≤ maxLen, by a random
// walk that follows external and internal transitions. The walk is bounded
// by a total step budget so that terminal internal cycles (states from
// which no external event is ever reachable) cannot loop it forever.
func RandomTrace(rng *rand.Rand, s *spec.Spec, maxLen int) []spec.Event {
	cur := s.Init()
	var tr []spec.Event
	for steps := 0; len(tr) < maxLen && steps < 10*maxLen+20; steps++ {
		ext := s.ExtEdges(cur)
		intl := s.IntEdges(cur)
		total := len(ext) + len(intl)
		if total == 0 {
			break
		}
		i := rng.Intn(total)
		if i < len(ext) {
			tr = append(tr, ext[i].Event)
			cur = ext[i].To
		} else {
			cur = intl[i-len(ext)]
		}
	}
	return tr
}
