// Family registry shared by the benchmark and fuzzing tooling: family
// kinds are registered under a short name, "kind(n)" instance names parse
// to sized instances, and BenchFamilies pins the registered bench sweep —
// including the sizes (chain(8), chaindrop(7), ring(6)) that only became
// tractable once the demand-driven environment and arena row storage landed.
//
// The registry is open: other packages (notably internal/protosmith, whose
// randomized systems register as the "rand"/"randwedge" kinds) add kinds
// from init, so quotbench, quotload, and any ParseFamily caller can consume
// generated families by name exactly like the hand-written ones.
package specgen

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

var famPattern = regexp.MustCompile(`^([a-z]+)\((\d+)\)$`)
var kindPattern = regexp.MustCompile(`^[a-z]+$`)

// Constructor builds the sized instance kind(n) of a registered family. It
// returns an error (not a panic) for sizes the kind does not support.
type Constructor func(n int) (Family, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Constructor)
)

// Register adds a family kind to the registry. The kind must be a nonempty
// lowercase word (it appears to the left of the parentheses in instance
// names such as "chain(4)"). Registering a kind that already exists is an
// explicit error — never a silent overwrite — because two packages
// registering the same name would make instance names ambiguous and
// benchmark labels unreproducible.
func Register(kind string, fn Constructor) error {
	if !kindPattern.MatchString(kind) {
		return fmt.Errorf("specgen: bad family kind %q (want a lowercase word)", kind)
	}
	if fn == nil {
		return fmt.Errorf("specgen: nil constructor for family kind %q", kind)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		return fmt.Errorf("specgen: family kind %q already registered", kind)
	}
	registry[kind] = fn
	return nil
}

// MustRegister is Register that panics on error; intended for package init
// functions, where a duplicate name is a programming error.
func MustRegister(kind string, fn Constructor) {
	if err := Register(kind, fn); err != nil {
		panic(err)
	}
}

// Kinds returns the registered family kinds, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// New builds the sized instance kind(n) of a registered family.
func New(kind string, n int) (Family, error) {
	regMu.RLock()
	fn, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return Family{}, fmt.Errorf("specgen: unknown family kind %q (registered: %s)",
			kind, strings.Join(Kinds(), ", "))
	}
	return fn(n)
}

// ParseFamily resolves an instance name like "chain(4)", "chaindrop(3)", or
// "rand(7)" to its Family via the registry.
func ParseFamily(name string) (Family, error) {
	m := famPattern.FindStringSubmatch(strings.TrimSpace(name))
	if m == nil {
		return Family{}, fmt.Errorf("specgen: bad family %q (want e.g. chain(4))", name)
	}
	n, err := strconv.Atoi(m[2])
	if err != nil {
		return Family{}, fmt.Errorf("specgen: bad family size in %q: %w", name, err)
	}
	return New(m[1], n)
}

// sized adapts one of the deterministic sized constructors (which panic on
// n < 1, as befits statically known benchmark instances) into a Constructor
// that reports bad sizes as errors.
func sized(kind string, fn func(n int) Family) Constructor {
	return func(n int) (Family, error) {
		if n < 1 {
			return Family{}, fmt.Errorf("specgen: family %s(%d) needs n >= 1", kind, n)
		}
		return fn(n), nil
	}
}

func init() {
	MustRegister("chain", sized("chain", Chain))
	MustRegister("chaindrop", sized("chaindrop", ChainDrop))
	MustRegister("ring", sized("ring", Ring))
}

// BenchFamilies is the registered benchmark sweep, smallest to largest per
// kind. The tail instances — chain(9) (~1M-state product), chaindrop(7),
// ring(6) — are sized for the demand-driven engine with arena row storage
// and the word-parallel safety phase; eager engines should run them under a
// derivation timeout. chain(10) (~4.2M-state product) is deliberately left
// out of the default sweep and run explicitly by the bench-frontier target.
func BenchFamilies() []string {
	return []string{
		"chain(4)", "chain(5)", "chain(6)", "chain(7)", "chain(8)", "chain(9)",
		"chaindrop(4)", "chaindrop(5)", "chaindrop(6)", "chaindrop(7)",
		"ring(2)", "ring(3)", "ring(4)", "ring(5)", "ring(6)",
	}
}
