// Family-instance naming shared by the benchmark tooling: "kind(n)" names
// parse to sized instances, and BenchFamilies pins the registered bench
// sweep — including the sizes (chain(7), chaindrop(6), ring(5)) that only
// became tractable once the demand-driven environment landed.
package specgen

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

var famPattern = regexp.MustCompile(`^([a-z]+)\((\d+)\)$`)

// ParseFamily resolves an instance name like "chain(4)", "chaindrop(3)", or
// "ring(2)" to its Family.
func ParseFamily(name string) (Family, error) {
	m := famPattern.FindStringSubmatch(strings.TrimSpace(name))
	if m == nil {
		return Family{}, fmt.Errorf("specgen: bad family %q (want e.g. chain(4))", name)
	}
	n, err := strconv.Atoi(m[2])
	if err != nil {
		return Family{}, fmt.Errorf("specgen: bad family size in %q: %w", name, err)
	}
	switch m[1] {
	case "chain":
		return Chain(n), nil
	case "chaindrop":
		return ChainDrop(n), nil
	case "ring":
		return Ring(n), nil
	}
	return Family{}, fmt.Errorf("specgen: unknown family kind %q", m[1])
}

// BenchFamilies is the registered benchmark sweep, smallest to largest per
// kind. The tail instances — chain(7) (~65k-state product), chaindrop(6),
// ring(5) — are sized for the demand-driven engine; eager engines should
// run them under a derivation timeout.
func BenchFamilies() []string {
	return []string{
		"chain(4)", "chain(5)", "chain(6)", "chain(7)",
		"chaindrop(4)", "chaindrop(5)", "chaindrop(6)",
		"ring(2)", "ring(3)", "ring(4)", "ring(5)",
	}
}
