package baseline

import (
	"errors"
	"testing"

	"protoquot/internal/compose"
	"protoquot/internal/core"
	"protoquot/internal/protocols"
	"protoquot/internal/sat"
	"protoquot/internal/spec"
)

// abSeed is the natural data-dependency seed for AB→NS conversion: a data
// message may go out on the NS side only after one arrived on the AB side;
// an AB-side acknowledgement may go out only after an NS-side one arrived.
func abSeed() Seed {
	return Seed{Rules: []SeedRule{
		{Name: "data", Producers: []spec.Event{"+d0", "+d1"}, Consumer: "-D"},
		{Name: "ack", Producers: []spec.Event{"+A"}, Consumer: "-a0"},
		{Name: "ack1", Producers: []spec.Event{"+A"}, Consumer: "-a1"},
	}}
}

// p1Role is the converter-side role of the missing AB receiver: the full
// receiver with its user interface (del) hidden.
func p1Role() *spec.Spec {
	return HideEvents(protocols.ABReceiver(), protocols.Del)
}

// q0Role is the converter-side role of the missing NS sender: the full
// sender with its user interface (acc) hidden.
func q0Role() *spec.Spec {
	return HideEvents(protocols.NSSender(), protocols.Acc)
}

func TestHideEvents(t *testing.T) {
	h := p1Role()
	if h.HasEvent(protocols.Del) {
		t.Error("del should be hidden")
	}
	if h.NumInternalTransitions() == 0 {
		t.Error("hidden events should become internal transitions")
	}
	if !h.HasEvent("+d0") {
		t.Error("message events should remain")
	}
}

func TestOkumuraProducesCandidate(t *testing.T) {
	cand, err := Okumura(p1Role(), q0Role(), abSeed())
	if err != nil {
		t.Fatalf("Okumura: %v", err)
	}
	if cand.NumStates() == 0 {
		t.Fatal("empty candidate")
	}
	// The candidate must respect the seed: no -D before a +d.
	if cand.HasTrace([]spec.Event{"-D"}) {
		t.Error("seed violation: -D before any data arrived")
	}
	if !cand.HasTrace([]spec.Event{"+d0", "-D"}) {
		t.Error("candidate should forward data")
	}
}

func TestOkumuraRejectsOverlappingInterfaces(t *testing.T) {
	if _, err := Okumura(p1Role(), p1Role(), Seed{}); err == nil {
		t.Error("overlapping interfaces should be rejected")
	}
}

// E12a: the bottom-up candidate for the symmetric configuration fails the
// a posteriori global check — and unlike the quotient method, that failure
// proves nothing about converter existence; the paper's point is that the
// top-down method settles the question (here: no converter exists).
func TestOkumuraCandidateFailsGlobalCheck(t *testing.T) {
	cand, err := Okumura(p1Role(), q0Role(), abSeed())
	if err != nil {
		t.Fatalf("Okumura: %v", err)
	}
	// In the symmetric configuration the candidate must still talk to the
	// NS receiver through the lossy channel; its tmo.ns interface is part
	// of q0Role already (the NS sender handles timeouts).
	b := protocols.SymmetricB()
	sys := compose.Pair(b, cand)
	if !sat.SameInterface(sys, protocols.Service()) {
		t.Fatalf("composite interface %v does not match the service", sys.Alphabet())
	}
	err = sat.Satisfies(sys, protocols.Service())
	var v *sat.Violation
	if !errors.As(err, &v) {
		t.Fatalf("global check should fail for the symmetric configuration, got %v", err)
	}
	t.Logf("global check fails as the paper predicts: %v", v)
}

// E12b: in the co-located configuration a converter exists; the seed
// candidate — adapted to the direct N1 interface — passes the global check
// after the quotient method independently establishes existence.
func TestOkumuraColocatedCandidate(t *testing.T) {
	// The co-located q0 role: the NS sender without channel or timeouts,
	// talking directly to N1: -D becomes +D (hand data to N1), +A becomes
	// -A (take N1's ack).
	q0, err := HideEvents(protocols.NSSender(), protocols.Acc, protocols.TmoNS).
		RenameEvents(map[spec.Event]spec.Event{"-D": "+D", "+A": "-A"})
	if err != nil {
		t.Fatal(err)
	}
	seed := Seed{Rules: []SeedRule{
		{Name: "data", Producers: []spec.Event{"+d0", "+d1"}, Consumer: "+D"},
		{Name: "ack0", Producers: []spec.Event{"-A"}, Consumer: "-a0"},
		{Name: "ack1", Producers: []spec.Event{"-A"}, Consumer: "-a1"},
	}}
	cand, err := Okumura(p1Role(), q0, seed)
	if err != nil {
		t.Fatalf("Okumura: %v", err)
	}
	b := protocols.ColocatedB()
	sys := compose.Pair(b, cand)
	if err := sat.Satisfies(sys, protocols.Service()); err != nil {
		t.Logf("candidate fails global check (%v) — bottom-up methods may need re-derivation", err)
	} else {
		t.Log("candidate passes the global check in the co-located configuration")
	}
	// Whatever the candidate's fate, the top-down method settles existence.
	res, derr := core.Derive(protocols.Service(), b, core.Options{})
	if derr != nil || !res.Exists {
		t.Fatalf("quotient method should find the co-located converter: %v", derr)
	}
	// Maximality: if the bottom-up candidate is correct, its traces embed
	// in the quotient converter's.
	if sat.Satisfies(sys, protocols.Service()) == nil {
		if err := sat.Safety(cand, res.Converter); err != nil {
			t.Errorf("correct bottom-up candidate exceeds the maximal converter: %v", err)
		}
	}
}

func TestRelayBuildsAndValidates(t *testing.T) {
	r, err := Relay("R", []Mapping{{In: "+x", Out: "-y"}, {In: "+u", Out: "-y"}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasTrace([]spec.Event{"+x", "-y", "+u", "-y"}) {
		t.Error("relay should forward messages")
	}
	if r.HasTrace([]spec.Event{"+x", "+u"}) {
		t.Error("relay holds at most one message")
	}
	if _, err := Relay("bad", []Mapping{{In: "+x", Out: "-y"}, {In: "+x", Out: "-z"}}); err == nil {
		t.Error("duplicate inputs should be rejected")
	}
	if _, err := Relay("bad", []Mapping{{In: "", Out: "-z"}}); err == nil {
		t.Error("empty events should be rejected")
	}
}

// E12c: the projection method applies when a common image exists — here,
// two isomorphic protocols (the NS protocol and a renamed copy) — and its
// relay converter is then globally correct.
func TestProjectionMethodOnIsomorphicProtocols(t *testing.T) {
	// P system: the NS system. Q system: the NS system with renamed user
	// events is the same machine, so the common image is immediate.
	image := protocols.AtLeastOnceService()
	if err := CommonImage(protocols.NSSystem(), protocols.NSSystem(), image); err != nil {
		t.Fatalf("CommonImage: %v", err)
	}
	// Conversion between a NS sender and a primed NS receiver: the
	// converter relays D to D' and A' to A. B = N0 ‖ Nch ‖ Nch' ‖ N1',
	// converter interface {+D, -D', +A', -A, tmo.ns'}.
	prime := map[spec.Event]spec.Event{
		"-D": "-D'", "+D": "+D'", "-A": "-A'", "+A": "+A'",
		protocols.TmoNS: "tmo.ns'",
	}
	nch2, err := protocols.NSChannel().RenameEvents(prime)
	if err != nil {
		t.Fatal(err)
	}
	n1p, err := protocols.NSReceiver().RenameEvents(prime)
	if err != nil {
		t.Fatal(err)
	}
	b := compose.MustMany(protocols.NSSender(), protocols.NSChannel(), nch2, n1p)
	relay, err := Relay("NS2NS'", []Mapping{
		{In: "+D", Out: "-D'"},
		{In: "+A'", Out: "-A"},
		{In: "tmo.ns'", Out: "-D'"}, // retransmit on the primed side
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := compose.Pair(b, relay)
	if !sat.SameInterface(sys, image) {
		t.Fatalf("interface mismatch: %v vs %v", sys.Alphabet(), image.Alphabet())
	}
	if err := sat.Satisfies(sys, image); err != nil {
		t.Errorf("relay converter between isomorphic protocols should satisfy the image: %v", err)
	}
}

func TestCommonImageFailsForABvsExactlyOnce(t *testing.T) {
	// NS does not project onto the exactly-once service: precondition
	// fails, so the method simply does not apply (no conclusion).
	if err := CommonImage(protocols.ABSystem(), protocols.NSSystem(), protocols.Service()); err == nil {
		t.Error("NS cannot project onto the exactly-once image")
	}
}
