package baseline_test

// Differential gate over the family registry: every registered specgen
// family — the hand-written chain/chaindrop/ring instances and the
// protosmith rand/randwedge systems alike — goes through the full
// cross-check harness, which drives the Okumura seed candidate and the Lam
// projection relay through the a posteriori global check and requires their
// verdicts to agree with the core engine: a candidate that passes the
// global check on a system the engine calls quotient-free (or that exceeds
// the maximal safety converter C0) fails the test.
//
// This lives in the external test package because the harness
// (internal/protosmith) imports internal/baseline.

import (
	"testing"

	"protoquot/internal/protosmith"
	"protoquot/internal/specgen"
)

func TestBaselinesAgreeWithEngineOnRegisteredFamilies(t *testing.T) {
	checked := 0
	for _, kind := range specgen.Kinds() {
		for n := 1; n <= 3; n++ {
			fam, err := specgen.New(kind, n)
			if err != nil {
				t.Errorf("%s(%d): %v", kind, n, err)
				continue
			}
			sys := &protosmith.System{Service: fam.Service, Components: fam.Components}
			rep := protosmith.Check(sys, protosmith.CheckOptions{})
			if rep.Divergence != nil {
				t.Errorf("%s: %v", fam.Name, rep.Divergence)
				continue
			}
			if rep.BaselineProbes == 0 {
				t.Errorf("%s: no baseline candidate was driven through the global check", fam.Name)
			}
			checked++
		}
	}
	if checked < 9 {
		t.Fatalf("only %d family instances checked; registry seems depleted", checked)
	}
}
