// Package baseline implements the two prior approaches the paper compares
// against in §2, reconstructed from its descriptions:
//
//   - Okumura's conversion-seed method (SIGCOMM '86): a bottom-up synthesis
//     that builds a converter from the specifications of the protocols'
//     "missing" entities and a conversion seed, then requires an a
//     posteriori global check against the desired service;
//   - Lam's projection method (IEEE TSE '88): when both protocol systems
//     project onto a common image service, a simple message-relay converter
//     suffices.
//
// Both are faithful in mechanism — bottom-up, seed/projection driven — and
// exist here so the benchmark harness can reproduce the paper's
// qualitative comparison: the top-down quotient method is the only one of
// the three whose failure proves no converter exists.
package baseline

import (
	"fmt"
	"sort"
	"strings"

	"protoquot/internal/spec"
)

// SeedRule is one produce/consume constraint of a conversion seed: every
// occurrence of Consumer must be preceded by an unconsumed occurrence of
// one of the Producers (a token buffer of capacity Cap). This is the
// classic data-dependency seed: "the converter may send a data message on
// the Q side only after receiving one on the P side".
type SeedRule struct {
	Name      string
	Producers []spec.Event
	Consumer  spec.Event
	Cap       int // token capacity; 0 means 1
}

// Seed is a conversion seed: a partial behavioral specification of the
// converter expressed as token-flow constraints between the two interfaces.
type Seed struct {
	Rules []SeedRule
}

// Okumura synthesizes a converter candidate from the missing entities'
// specifications. p1 and q0 describe, over the converter-side event
// alphabets, how the converter must behave toward each protocol (the roles
// it impersonates); the seed constrains cross-interface ordering. The
// construction is the reachable product of p1, q0 and the seed counters,
// followed by iterative removal of states with no outgoing transitions
// (local deadlocks). The result is a candidate only: per the paper's
// critique, it must still be checked against the global service
// specification, and failure of this method does not mean no converter
// exists.
func Okumura(p1, q0 *spec.Spec, seed Seed) (*spec.Spec, error) {
	for _, e := range p1.Alphabet() {
		if q0.HasEvent(e) {
			return nil, fmt.Errorf("baseline: interfaces of p1 and q0 overlap on %q", e)
		}
	}
	caps := make([]int, len(seed.Rules))
	for i, r := range seed.Rules {
		caps[i] = r.Cap
		if caps[i] <= 0 {
			caps[i] = 1
		}
	}

	type cfg struct {
		p, q spec.State
		tok  string // counter vector, comma-separated
	}
	tokKey := func(t []int) string {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = fmt.Sprint(v)
		}
		return strings.Join(parts, ",")
	}
	parseTok := func(s string) []int {
		if s == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		out := make([]int, len(parts))
		for i, p := range parts {
			fmt.Sscan(p, &out[i])
		}
		return out
	}
	stName := func(c cfg) string {
		return p1.StateName(c.p) + "|" + q0.StateName(c.q) + "|" + c.tok
	}

	// fire updates the token vector for event e, or reports the event
	// blocked by an empty buffer.
	fire := func(tok []int, e spec.Event) ([]int, bool) {
		out := append([]int(nil), tok...)
		for i, r := range seed.Rules {
			if r.Consumer == e {
				if out[i] == 0 {
					return nil, false
				}
				out[i]--
			}
		}
		for i, r := range seed.Rules {
			for _, p := range r.Producers {
				if p == e && out[i] < caps[i] {
					out[i]++
				}
			}
		}
		return out, true
	}

	b := spec.NewBuilder(fmt.Sprintf("Okumura(%s,%s)", p1.Name(), q0.Name()))
	for _, e := range p1.Alphabet() {
		b.Event(e)
	}
	for _, e := range q0.Alphabet() {
		b.Event(e)
	}
	zero := make([]int, len(seed.Rules))
	init := cfg{p1.Init(), q0.Init(), tokKey(zero)}
	b.Init(stName(init))
	seen := map[cfg]bool{init: true}
	work := []cfg{init}
	type edge struct {
		from string
		e    spec.Event
		to   string
		intl bool
	}
	var edges []edge
	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		tok := parseTok(c.tok)
		push := func(n cfg) {
			if !seen[n] {
				seen[n] = true
				work = append(work, n)
			}
		}
		for _, ed := range p1.ExtEdges(c.p) {
			nt, ok := fire(tok, ed.Event)
			if !ok {
				continue
			}
			n := cfg{ed.To, c.q, tokKey(nt)}
			edges = append(edges, edge{stName(c), ed.Event, stName(n), false})
			push(n)
		}
		for _, t := range p1.IntEdges(c.p) {
			n := cfg{t, c.q, c.tok}
			edges = append(edges, edge{from: stName(c), to: stName(n), intl: true})
			push(n)
		}
		for _, ed := range q0.ExtEdges(c.q) {
			nt, ok := fire(tok, ed.Event)
			if !ok {
				continue
			}
			n := cfg{c.p, ed.To, tokKey(nt)}
			edges = append(edges, edge{stName(c), ed.Event, stName(n), false})
			push(n)
		}
		for _, t := range q0.IntEdges(c.q) {
			n := cfg{c.p, t, c.tok}
			edges = append(edges, edge{from: stName(c), to: stName(n), intl: true})
			push(n)
		}
	}
	for _, ed := range edges {
		if ed.intl {
			b.Int(ed.from, ed.to)
		} else {
			b.Ext(ed.from, ed.e, ed.to)
		}
	}
	cand, err := b.Build()
	if err != nil {
		return nil, err
	}
	return pruneDeadlocks(cand)
}

// pruneDeadlocks iteratively removes states with no outgoing transitions;
// Okumura-style synthesis treats such local deadlocks as synthesis failures
// of the candidate rather than service-level decisions.
func pruneDeadlocks(s *spec.Spec) (*spec.Spec, error) {
	for {
		dead := map[spec.State]bool{}
		for st := 0; st < s.NumStates(); st++ {
			if len(s.ExtEdges(spec.State(st))) == 0 && len(s.IntEdges(spec.State(st))) == 0 {
				dead[spec.State(st)] = true
			}
		}
		if len(dead) == 0 {
			return s, nil
		}
		if dead[s.Init()] {
			return nil, fmt.Errorf("baseline: seed synthesis deadlocked at the initial state")
		}
		b := spec.NewBuilder(s.Name())
		for _, e := range s.Alphabet() {
			b.Event(e)
		}
		b.Init(s.StateName(s.Init()))
		for st := 0; st < s.NumStates(); st++ {
			if dead[spec.State(st)] {
				continue
			}
			b.State(s.StateName(spec.State(st)))
			for _, ed := range s.ExtEdges(spec.State(st)) {
				if !dead[ed.To] {
					b.Ext(s.StateName(spec.State(st)), ed.Event, s.StateName(ed.To))
				}
			}
			for _, t := range s.IntEdges(spec.State(st)) {
				if !dead[t] {
					b.Int(s.StateName(spec.State(st)), s.StateName(t))
				}
			}
		}
		ns := b.MustBuild().Trim()
		if ns.NumStates() == s.NumStates() {
			return ns, nil
		}
		s = ns
	}
}

// HideEvents returns a copy of s with the given events removed from the
// alphabet and their transitions converted to internal moves — the
// projection used to turn a full protocol entity into its converter-side
// role (e.g. hiding the AB receiver's user interface).
func HideEvents(s *spec.Spec, hide ...spec.Event) *spec.Spec {
	hidden := make(map[spec.Event]bool, len(hide))
	for _, e := range hide {
		hidden[e] = true
	}
	b := spec.NewBuilder(s.Name() + ".hidden")
	var kept []spec.Event
	for _, e := range s.Alphabet() {
		if !hidden[e] {
			kept = append(kept, e)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	for _, e := range kept {
		b.Event(e)
	}
	b.Init(s.StateName(s.Init()))
	for st := 0; st < s.NumStates(); st++ {
		b.State(s.StateName(spec.State(st)))
		for _, ed := range s.ExtEdges(spec.State(st)) {
			if hidden[ed.Event] {
				b.Int(s.StateName(spec.State(st)), s.StateName(ed.To))
			} else {
				b.Ext(s.StateName(spec.State(st)), ed.Event, s.StateName(ed.To))
			}
		}
		for _, t := range s.IntEdges(spec.State(st)) {
			b.Int(s.StateName(spec.State(st)), s.StateName(t))
		}
	}
	return b.MustBuild()
}
