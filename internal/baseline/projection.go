package baseline

import (
	"fmt"

	"protoquot/internal/sat"
	"protoquot/internal/spec"
)

// Lam's projection method (IEEE TSE 1988, as summarized in the paper's §2):
// if each existing protocol system can be projected onto a common image —
// i.e. both satisfy the same abstract service specification — then a
// simple, (protocol-)stateless converter that relays each message of one
// protocol as the corresponding message of the other is easily obtained.
// The method is a heuristic: when no common image exists at the message
// level (as for AB vs NS, where acknowledgement bits have no NS
// counterpart), it does not apply, and nothing can be concluded about
// converter existence.

// Mapping is one relay rule of a stateless converter: upon receiving In,
// emit Out.
type Mapping struct {
	In  spec.Event
	Out spec.Event
}

// CommonImage checks the method's precondition: both protocol systems
// satisfy the image service. It returns nil when the common image holds.
func CommonImage(pSys, qSys, image *spec.Spec) error {
	if err := sat.Satisfies(pSys, image); err != nil {
		return fmt.Errorf("baseline: P system does not project onto the image: %w", err)
	}
	if err := sat.Satisfies(qSys, image); err != nil {
		return fmt.Errorf("baseline: Q system does not project onto the image: %w", err)
	}
	return nil
}

// Relay builds the stateless converter induced by the rules: from the idle
// state, receiving In moves to a holding state from which Out is emitted
// and the converter returns to idle. It holds at most one message — the
// "simple converter" of the projection method. Every In must be distinct;
// multiple rules may share an Out.
func Relay(name string, rules []Mapping) (*spec.Spec, error) {
	seen := map[spec.Event]bool{}
	b := spec.NewBuilder(name)
	b.Init("idle")
	for i, r := range rules {
		if r.In == "" || r.Out == "" {
			return nil, fmt.Errorf("baseline: relay rule %d has empty events", i)
		}
		if seen[r.In] {
			return nil, fmt.Errorf("baseline: duplicate relay input %q", r.In)
		}
		seen[r.In] = true
		hold := "hold." + string(r.In)
		b.Ext("idle", r.In, hold)
		b.Ext(hold, r.Out, "idle")
	}
	return b.Build()
}
