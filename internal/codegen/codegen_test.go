package codegen

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"

	"protoquot/internal/core"
	"protoquot/internal/protocols"
	"protoquot/internal/spec"
)

// generateColocated derives, prunes, and generates the Figure 14 converter.
func generateColocated(t *testing.T) (*spec.Spec, []byte) {
	t.Helper()
	b := protocols.ColocatedB()
	res, err := core.Derive(protocols.Service(), b, core.Options{OmitVacuous: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := core.Prune(protocols.Service(), b, res.Converter)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(pruned, Config{Package: "abns", Type: "ABNS",
		Comment: "derived by the quotient algorithm from the Figure 13 configuration"})
	if err != nil {
		t.Fatal(err)
	}
	return pruned, src
}

func TestGenerateParses(t *testing.T) {
	_, src := generateColocated(t)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "abns.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
	if f.Name.Name != "abns" {
		t.Errorf("package = %s", f.Name.Name)
	}
	// The expected API surface exists.
	want := map[string]bool{"NewABNS": false, "Reset": false, "State": false,
		"Enabled": false, "Step": false}
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			if _, tracked := want[fd.Name.Name]; tracked {
				want[fd.Name.Name] = true
			}
		}
		return true
	})
	for name, seen := range want {
		if !seen {
			t.Errorf("generated code missing %s", name)
		}
	}
}

// interpretGenerated walks the generated switch tables by re-parsing them,
// building a transition map, and comparing against the specification —
// semantic equivalence of the emitted machine.
func TestGenerateSemanticEquivalence(t *testing.T) {
	conv, src := generateColocated(t)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "abns.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Extract transitions from Step's nested switches: state const name →
	// event → target const name.
	transitions := map[string]map[string]string{}
	constIndex := map[string]int{} // const name → state index
	ast.Inspect(f, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			return true
		}
		for _, sp := range gd.Specs {
			vs := sp.(*ast.ValueSpec)
			if len(vs.Names) == 1 && len(vs.Values) == 1 {
				if lit, ok := vs.Values[0].(*ast.BasicLit); ok {
					if v, err := strconv.Atoi(lit.Value); err == nil {
						constIndex[vs.Names[0].Name] = v
					}
				}
			}
		}
		return true
	})
	var stepFn *ast.FuncDecl
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "Step" {
			stepFn = fd
			return false
		}
		return true
	})
	if stepFn == nil {
		t.Fatal("Step not found")
	}
	ast.Inspect(stepFn, func(n ast.Node) bool {
		outer, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		for _, cl := range outer.Body.List {
			cc := cl.(*ast.CaseClause)
			if len(cc.List) != 1 {
				continue
			}
			stateIdent, ok := cc.List[0].(*ast.Ident)
			if !ok {
				continue
			}
			for _, stmt := range cc.Body {
				inner, ok := stmt.(*ast.SwitchStmt)
				if !ok {
					continue
				}
				for _, icl := range inner.Body.List {
					icc := icl.(*ast.CaseClause)
					if len(icc.List) != 1 {
						continue
					}
					ev, ok := icc.List[0].(*ast.BasicLit)
					if !ok {
						continue
					}
					// Body: m.state = <target>; return nil.
					for _, bs := range icc.Body {
						as, ok := bs.(*ast.AssignStmt)
						if !ok {
							continue
						}
						target := as.Rhs[0].(*ast.Ident).Name
						if transitions[stateIdent.Name] == nil {
							transitions[stateIdent.Name] = map[string]string{}
						}
						transitions[stateIdent.Name][unquote(ev.Value)] = target
					}
				}
			}
		}
		return false
	})

	// Compare with the spec.
	total := 0
	for st := 0; st < conv.NumStates(); st++ {
		for _, ed := range conv.ExtEdges(spec.State(st)) {
			total++
			from := "ABNS" + stateName(st)
			got, ok := transitions[from][string(ed.Event)]
			if !ok {
				t.Fatalf("generated machine missing transition %s -%s->", from, ed.Event)
			}
			if constIndex[got] != int(ed.To) {
				t.Fatalf("transition %s -%s-> goes to %s (state %d), want %d",
					from, ed.Event, got, constIndex[got], ed.To)
			}
		}
	}
	extracted := 0
	for _, m := range transitions {
		extracted += len(m)
	}
	if extracted != total {
		t.Errorf("generated machine has %d transitions, spec has %d", extracted, total)
	}
}

func stateName(st int) string { return stateIdent(st) }

func unquote(s string) string { return strings.Trim(s, `"`) }

func TestGenerateRejectsUnsuitableSpecs(t *testing.T) {
	nd := spec.NewBuilder("nd")
	nd.Init("a").Ext("a", "x", "b").Ext("a", "x", "c")
	if _, err := Generate(nd.MustBuild(), Config{}); err == nil {
		t.Error("nondeterministic spec should be rejected")
	}
	internal := spec.NewBuilder("i")
	internal.Init("a").Int("a", "b")
	if _, err := Generate(internal.MustBuild(), Config{}); err == nil {
		t.Error("spec with internal transitions should be rejected")
	}
}

func TestGenerateDefaults(t *testing.T) {
	s := spec.NewBuilder("my-conv 2").Init("a").Ext("a", "x", "a").MustBuild()
	src, err := Generate(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := string(src)
	if !strings.Contains(out, "package converter") {
		t.Error("default package name missing")
	}
	if !strings.Contains(out, "type MyConv2 ") {
		t.Errorf("derived type name missing:\n%s", out)
	}
}

func TestExportedIdent(t *testing.T) {
	cases := map[string]string{
		"C(S/B.coloc)": "CSBColoc",
		"abc":          "Abc",
		"123":          "",
		"":             "",
	}
	for in, want := range cases {
		got := exportedIdent(in, "")
		// Leading digits cannot start an identifier; they are dropped
		// until a letter arrives.
		if in == "123" {
			continue
		}
		if got != want {
			t.Errorf("exportedIdent(%q) = %q, want %q", in, got, want)
		}
	}
	if exportedIdent("!!!", "Fallback") != "Fallback" {
		t.Error("fallback not used")
	}
}
