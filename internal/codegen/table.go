package codegen

import (
	"fmt"
	"go/format"
	"strings"

	"protoquot/internal/convrt"
	"protoquot/internal/spec"
)

// Backends. The switch backend (the default, and the original output of
// this package) emits a string-switch machine that is auditable line by
// line against the specification; the table backend emits the same
// compiled representation internal/convrt executes — dense event ids in
// alphabet order, a flat row-major transition array — as plain Go arrays,
// for embedding a converter on a data path without strings, maps, or this
// library.
const (
	BackendSwitch = "switch"
	BackendTable  = "table"
)

// GenerateTable renders the table-backend Go source for s: the identical
// integer-indexed form convrt.Compile builds at runtime, embedded as
// array literals with an allocation-free StepID/EnabledIDs API plus
// string-level conveniences. Preconditions are Generate's: no internal
// transitions and a deterministic spec.
func GenerateTable(s *spec.Spec, cfg Config) ([]byte, error) {
	t, err := convrt.Compile(s)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	if cfg.Package == "" {
		cfg.Package = "converter"
	}
	if cfg.Type == "" {
		cfg.Type = exportedIdent(s.Name(), "Converter")
	}
	T := cfg.Type
	lt := lowerFirst(T)

	evNames := make([]string, t.NumEvents())
	for i := range evNames {
		evNames[i] = string(t.EventName(int32(i)))
	}
	evIdents := disambiguate(evNames, eventIdent, "Event")

	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated from specification %q; DO NOT EDIT.\n", s.Name())
	if cfg.Comment != "" {
		fmt.Fprintf(&b, "// %s\n", cfg.Comment)
	}
	fmt.Fprintf(&b, "\npackage %s\n\n", cfg.Package)
	fmt.Fprintf(&b, "import \"fmt\"\n\n")

	fmt.Fprintf(&b, "// Event ids of %s, dense in alphabet order. %sNoEvent/%sNoState are the\n", s.Name(), T, T)
	fmt.Fprintf(&b, "// failed-lookup sentinels.\n")
	fmt.Fprintf(&b, "const (\n")
	for i, id := range evIdents {
		fmt.Fprintf(&b, "\t%sEv%s int32 = %d // %q\n", T, id, i, evNames[i])
	}
	fmt.Fprintf(&b, ")\n\n")
	fmt.Fprintf(&b, "const (\n")
	fmt.Fprintf(&b, "\t%sNumStates int32 = %d\n", T, t.NumStates())
	fmt.Fprintf(&b, "\t%sNumEvents int32 = %d\n", T, t.NumEvents())
	fmt.Fprintf(&b, "\t%sInit      int32 = %d\n", T, t.Init())
	fmt.Fprintf(&b, "\t%sNoEvent   int32 = -1\n", T)
	fmt.Fprintf(&b, "\t%sNoState   int32 = -1\n", T)
	fmt.Fprintf(&b, ")\n\n")

	fmt.Fprintf(&b, "var %sEventNames = [...]string{\n", lt)
	for _, e := range evNames {
		fmt.Fprintf(&b, "\t%q,\n", e)
	}
	fmt.Fprintf(&b, "}\n\n")
	fmt.Fprintf(&b, "var %sStateNames = [...]string{\n", lt)
	for st := 0; st < t.NumStates(); st++ {
		fmt.Fprintf(&b, "\t%q,\n", t.StateName(int32(st)))
	}
	fmt.Fprintf(&b, "}\n\n")

	fmt.Fprintf(&b, "// %sNext is the row-major (state × event) transition table; %sNoState\n", lt, T)
	fmt.Fprintf(&b, "// marks a not-enabled pair.\n")
	fmt.Fprintf(&b, "var %sNext = [...]int32{\n", lt)
	for st := 0; st < t.NumStates(); st++ {
		fmt.Fprintf(&b, "\t")
		for ev := 0; ev < t.NumEvents(); ev++ {
			nxt, ok := t.Step(int32(st), int32(ev))
			if !ok {
				nxt = -1
			}
			if ev > 0 {
				fmt.Fprintf(&b, " ")
			}
			fmt.Fprintf(&b, "%d,", nxt)
		}
		fmt.Fprintf(&b, " // %s\n", t.StateName(int32(st)))
	}
	fmt.Fprintf(&b, "}\n\n")

	fmt.Fprintf(&b, "// %s is the table-compiled machine. The zero value starts at the\n", T)
	fmt.Fprintf(&b, "// initial state.\n")
	fmt.Fprintf(&b, "type %s struct {\n\tstate       int32\n\tinitialized bool\n}\n\n", T)
	fmt.Fprintf(&b, "// New%s returns a machine at the initial state.\n", T)
	fmt.Fprintf(&b, "func New%s() *%s { m := &%s{}; m.Reset(); return m }\n\n", T, T, T)
	fmt.Fprintf(&b, "// Reset returns the machine to the initial state.\n")
	fmt.Fprintf(&b, "func (m *%s) Reset() { m.state = %sInit; m.initialized = true }\n\n", T, T)
	fmt.Fprintf(&b, "func (m *%s) ensure() {\n\tif !m.initialized {\n\t\tm.Reset()\n\t}\n}\n\n", T)
	fmt.Fprintf(&b, "// StateIndex returns the current state's dense index.\n")
	fmt.Fprintf(&b, "func (m *%s) StateIndex() int32 {\n\tm.ensure()\n\treturn m.state\n}\n\n", T)
	fmt.Fprintf(&b, "// State returns the current state's name.\n")
	fmt.Fprintf(&b, "func (m *%s) State() string {\n\tm.ensure()\n\treturn %sStateNames[m.state]\n}\n\n", T, lt)

	fmt.Fprintf(&b, "// EventID interns an event name by binary search over the sorted\n")
	fmt.Fprintf(&b, "// alphabet; %sNoEvent if unknown. It never allocates.\n", T)
	fmt.Fprintf(&b, "func (m *%s) EventID(event string) int32 {\n", T)
	fmt.Fprintf(&b, "\tlo, hi := int32(0), %sNumEvents\n", T)
	fmt.Fprintf(&b, "\tfor lo < hi {\n\t\tmid := (lo + hi) / 2\n")
	fmt.Fprintf(&b, "\t\tif %sEventNames[mid] < event {\n\t\t\tlo = mid + 1\n\t\t} else {\n\t\t\thi = mid\n\t\t}\n\t}\n", lt)
	fmt.Fprintf(&b, "\tif lo < %sNumEvents && %sEventNames[lo] == event {\n\t\treturn lo\n\t}\n", T, lt)
	fmt.Fprintf(&b, "\treturn %sNoEvent\n}\n\n", T)

	fmt.Fprintf(&b, "// StepID advances by an interned event id; false (state unchanged) if\n")
	fmt.Fprintf(&b, "// it is not enabled. The steady-state path: one bounds check and one\n")
	fmt.Fprintf(&b, "// table load, no allocation.\n")
	fmt.Fprintf(&b, "func (m *%s) StepID(ev int32) bool {\n\tm.ensure()\n", T)
	fmt.Fprintf(&b, "\tif ev < 0 || ev >= %sNumEvents {\n\t\treturn false\n\t}\n", T)
	fmt.Fprintf(&b, "\tnxt := %sNext[m.state*%sNumEvents+ev]\n", lt, T)
	fmt.Fprintf(&b, "\tif nxt == %sNoState {\n\t\treturn false\n\t}\n", T)
	fmt.Fprintf(&b, "\tm.state = nxt\n\treturn true\n}\n\n")

	fmt.Fprintf(&b, "// Step advances the machine by one named event; it returns an error\n")
	fmt.Fprintf(&b, "// (and leaves the state unchanged) if the event is not enabled.\n")
	fmt.Fprintf(&b, "func (m *%s) Step(event string) error {\n", T)
	fmt.Fprintf(&b, "\tif m.StepID(m.EventID(event)) {\n\t\treturn nil\n\t}\n")
	fmt.Fprintf(&b, "\treturn fmt.Errorf(\"%s: event %%q not enabled in state %%s\", event, m.State())\n}\n\n", T)

	fmt.Fprintf(&b, "// EnabledIDs appends the event ids enabled in the current state to buf\n")
	fmt.Fprintf(&b, "// and returns it; with a caller-reused buffer it never allocates.\n")
	fmt.Fprintf(&b, "func (m *%s) EnabledIDs(buf []int32) []int32 {\n\tm.ensure()\n", T)
	fmt.Fprintf(&b, "\trow := %sNext[m.state*%sNumEvents:][:%sNumEvents]\n", lt, T, T)
	fmt.Fprintf(&b, "\tfor ev, nxt := range row {\n\t\tif nxt != %sNoState {\n\t\t\tbuf = append(buf, int32(ev))\n\t\t}\n\t}\n\treturn buf\n}\n\n", T)

	fmt.Fprintf(&b, "// Enabled returns the events accepted in the current state, sorted.\n")
	fmt.Fprintf(&b, "func (m *%s) Enabled() []string {\n\tm.ensure()\n", T)
	fmt.Fprintf(&b, "\tvar out []string\n")
	fmt.Fprintf(&b, "\trow := %sNext[m.state*%sNumEvents:][:%sNumEvents]\n", lt, T, T)
	fmt.Fprintf(&b, "\tfor ev, nxt := range row {\n\t\tif nxt != %sNoState {\n\t\t\tout = append(out, %sEventNames[ev])\n\t\t}\n\t}\n\treturn out\n}\n", T, lt)

	src, err := format.Source([]byte(b.String()))
	if err != nil {
		return nil, fmt.Errorf("codegen: internal error formatting table output: %w", err)
	}
	return src, nil
}

// eventIdent mangles an event name into an exported identifier fragment.
// The polarity sigils every converter alphabet carries — "+m" (remove m
// from a channel) and "-m" (pass m into a channel) — map to distinct Recv/
// Send prefixes, because exportedIdent alone erases them: "+d0" and "-d0"
// would otherwise both mangle to "D0" and silently merge.
func eventIdent(e string) string {
	prefix := ""
	switch {
	case strings.HasPrefix(e, "+"):
		prefix, e = "Recv", e[1:]
	case strings.HasPrefix(e, "-"):
		prefix, e = "Send", e[1:]
	}
	return prefix + exportedIdent(e, "")
}

// disambiguate assigns each name a unique identifier, deterministically:
// names are mangled in input order, the first claimant of an identifier
// keeps it, and later collisions append "_2", "_3", … by claim order.
// Names whose mangle comes up empty (all-symbol, all-digit) fall back to
// fallback+index. Distinct inputs therefore never merge and the output is
// a pure function of the input slice — the collision fix pinned by
// TestEventIdentCollisions.
func disambiguate(names []string, mangle func(string) string, fallback string) []string {
	out := make([]string, len(names))
	used := make(map[string]bool, len(names))
	for i, name := range names {
		base := mangle(name)
		if base == "" {
			base = fmt.Sprintf("%s%d", fallback, i)
		}
		id := base
		for n := 2; used[id]; n++ {
			id = fmt.Sprintf("%s_%d", base, n)
		}
		used[id] = true
		out[i] = id
	}
	return out
}
