// Package codegen emits standalone Go source for a derived converter: a
// dependency-free state machine with a Step method, ready to embed in an
// application without this library or its interpreter. The generated type
// is deliberately boring — a switch over (state, event) pairs — so it can
// be audited against the specification line by line.
package codegen

import (
	"fmt"
	"go/format"
	"sort"
	"strings"
	"unicode"

	"protoquot/internal/spec"
)

// Config controls generation.
type Config struct {
	// Package is the package name of the generated file (default "converter").
	Package string
	// Type is the generated type's name (default derived from the spec name).
	Type string
	// Comment is an optional provenance note included in the file header.
	Comment string
	// Backend selects the output shape: BackendSwitch (default) or
	// BackendTable.
	Backend string
}

// Generate renders Go source implementing s, which must be a converter-like
// specification: no internal transitions and deterministic (at most one
// successor per state and event). Quotient outputs satisfy both; for a
// nondeterministic spec, resolve the choices first (e.g. core.Prune, or
// (*spec.Spec).Normalize). The emitted API is
//
//	c := NewT()
//	c.Enabled()            // events possible in the current state
//	err := c.Step("+d0")   // advance; error if the event is not enabled
//	c.State()              // current state name
//	c.Reset()
//
// The source is returned gofmt-formatted.
func Generate(s *spec.Spec, cfg Config) ([]byte, error) {
	switch cfg.Backend {
	case "", BackendSwitch:
		// The switch backend below.
	case BackendTable:
		return GenerateTable(s, cfg)
	default:
		return nil, fmt.Errorf("codegen: unknown backend %q (want %q or %q)", cfg.Backend, BackendSwitch, BackendTable)
	}
	if s.NumInternalTransitions() > 0 {
		return nil, fmt.Errorf("codegen: %s has internal transitions; generate from a converter, not a raw spec", s.Name())
	}
	if !s.DeterministicExternal() {
		return nil, fmt.Errorf("codegen: %s is nondeterministic; prune or normalize it first", s.Name())
	}
	if cfg.Package == "" {
		cfg.Package = "converter"
	}
	if cfg.Type == "" {
		cfg.Type = exportedIdent(s.Name(), "Converter")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated from specification %q; DO NOT EDIT.\n", s.Name())
	if cfg.Comment != "" {
		fmt.Fprintf(&b, "// %s\n", cfg.Comment)
	}
	fmt.Fprintf(&b, "\npackage %s\n\n", cfg.Package)
	fmt.Fprintf(&b, "import \"fmt\"\n\n")

	// State constants.
	fmt.Fprintf(&b, "// %sState enumerates the states of %s.\n", cfg.Type, s.Name())
	fmt.Fprintf(&b, "type %sState int\n\n", cfg.Type)
	fmt.Fprintf(&b, "const (\n")
	for st := 0; st < s.NumStates(); st++ {
		fmt.Fprintf(&b, "\t%s%s %sState = %d // %s\n",
			cfg.Type, stateIdent(st), cfg.Type, st, s.StateName(spec.State(st)))
	}
	fmt.Fprintf(&b, ")\n\n")

	// State names.
	fmt.Fprintf(&b, "var %sStateNames = [...]string{\n", lowerFirst(cfg.Type))
	for st := 0; st < s.NumStates(); st++ {
		fmt.Fprintf(&b, "\t%q,\n", s.StateName(spec.State(st)))
	}
	fmt.Fprintf(&b, "}\n\n")

	// The machine.
	fmt.Fprintf(&b, "// %s is the generated state machine. The zero value starts at the\n", cfg.Type)
	fmt.Fprintf(&b, "// initial state %q.\n", s.StateName(s.Init()))
	fmt.Fprintf(&b, "type %s struct {\n\tstate %sState\n\tinitialized bool\n}\n\n", cfg.Type, cfg.Type)
	fmt.Fprintf(&b, "// New%s returns a machine at the initial state.\n", cfg.Type)
	fmt.Fprintf(&b, "func New%s() *%s { m := &%s{}; m.Reset(); return m }\n\n", cfg.Type, cfg.Type, cfg.Type)
	fmt.Fprintf(&b, "// Reset returns the machine to the initial state.\n")
	fmt.Fprintf(&b, "func (m *%s) Reset() { m.state = %s%s; m.initialized = true }\n\n",
		cfg.Type, cfg.Type, stateIdent(int(s.Init())))
	fmt.Fprintf(&b, "// State returns the current state's name.\n")
	fmt.Fprintf(&b, "func (m *%s) State() string {\n\tm.ensure()\n\treturn %sStateNames[m.state]\n}\n\n",
		cfg.Type, lowerFirst(cfg.Type))
	fmt.Fprintf(&b, "func (m *%s) ensure() {\n\tif !m.initialized {\n\t\tm.Reset()\n\t}\n}\n\n", cfg.Type)

	// Enabled.
	fmt.Fprintf(&b, "// Enabled returns the events accepted in the current state, sorted.\n")
	fmt.Fprintf(&b, "func (m *%s) Enabled() []string {\n\tm.ensure()\n\tswitch m.state {\n", cfg.Type)
	for st := 0; st < s.NumStates(); st++ {
		edges := s.ExtEdges(spec.State(st))
		if len(edges) == 0 {
			continue
		}
		evs := make([]string, len(edges))
		for i, ed := range edges {
			evs[i] = fmt.Sprintf("%q", string(ed.Event))
		}
		sort.Strings(evs)
		fmt.Fprintf(&b, "\tcase %s%s:\n\t\treturn []string{%s}\n",
			cfg.Type, stateIdent(st), strings.Join(evs, ", "))
	}
	fmt.Fprintf(&b, "\t}\n\treturn nil\n}\n\n")

	// Step.
	fmt.Fprintf(&b, "// Step advances the machine by one event; it returns an error (and\n")
	fmt.Fprintf(&b, "// leaves the state unchanged) if the event is not enabled.\n")
	fmt.Fprintf(&b, "func (m *%s) Step(event string) error {\n\tm.ensure()\n\tswitch m.state {\n", cfg.Type)
	for st := 0; st < s.NumStates(); st++ {
		edges := s.ExtEdges(spec.State(st))
		if len(edges) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\tcase %s%s:\n\t\tswitch event {\n", cfg.Type, stateIdent(st))
		for _, ed := range edges {
			fmt.Fprintf(&b, "\t\tcase %q:\n\t\t\tm.state = %s%s\n\t\t\treturn nil\n",
				string(ed.Event), cfg.Type, stateIdent(int(ed.To)))
		}
		fmt.Fprintf(&b, "\t\t}\n")
	}
	fmt.Fprintf(&b, "\t}\n")
	fmt.Fprintf(&b, "\treturn fmt.Errorf(\"%s: event %%q not enabled in state %%s\", event, m.State())\n}\n",
		cfg.Type)

	src, err := format.Source([]byte(b.String()))
	if err != nil {
		return nil, fmt.Errorf("codegen: internal error formatting output: %w", err)
	}
	return src, nil
}

// stateIdent names the constant for state index st.
func stateIdent(st int) string { return fmt.Sprintf("State%d", st) }

// exportedIdent derives an exported Go identifier from a free-form spec
// name, falling back to def when nothing survives.
func exportedIdent(name, def string) string {
	var b strings.Builder
	up := true
	for _, r := range name {
		switch {
		case unicode.IsLetter(r) || (unicode.IsDigit(r) && b.Len() > 0):
			if up {
				r = unicode.ToUpper(r)
				up = false
			}
			b.WriteRune(r)
		default:
			up = true
		}
	}
	if b.Len() == 0 {
		return def
	}
	return b.String()
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	r := []rune(s)
	r[0] = unicode.ToLower(r[0])
	return string(r)
}
