package codegen

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"protoquot/internal/compose"
	"protoquot/internal/convrt"
	"protoquot/internal/core"
	"protoquot/internal/dsl"
	"protoquot/internal/protocols"
	"protoquot/internal/protosmith"
	"protoquot/internal/spec"
	"protoquot/internal/specgen"
)

// typeCheckGenerated parses AND type-checks one generated file — parsing
// alone would admit duplicate top-level identifiers, the exact failure mode
// of the event-name mangling collision this backend had to solve.
func typeCheckGenerated(t *testing.T, filename string, src []byte) *ast.File {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check(f.Name.Name, fset, []*ast.File{f}, nil); err != nil {
		t.Fatalf("generated code does not type-check: %v\n%s", err, src)
	}
	return f
}

// extractedTable is the machine recovered from generated table-backend
// source by walking its array literals.
type extractedTable struct {
	events []string
	states []string
	next   []int
	init   int
}

// extractTable recovers the compiled arrays from generated source.
func extractTable(t *testing.T, f *ast.File, typeName string) extractedTable {
	t.Helper()
	lt := lowerFirst(typeName)
	var out extractedTable
	out.init = -1
	strArray := func(cl *ast.CompositeLit) []string {
		var ss []string
		for _, el := range cl.Elts {
			lit, ok := el.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				t.Fatalf("non-string element in name array")
			}
			v, err := strconv.Unquote(lit.Value)
			if err != nil {
				t.Fatal(err)
			}
			ss = append(ss, v)
		}
		return ss
	}
	intArray := func(cl *ast.CompositeLit) []int {
		var vs []int
		for _, el := range cl.Elts {
			neg := false
			if u, ok := el.(*ast.UnaryExpr); ok && u.Op == token.SUB {
				neg = true
				el = u.X
			}
			lit, ok := el.(*ast.BasicLit)
			if !ok || lit.Kind != token.INT {
				t.Fatalf("non-int element in table array")
			}
			v, err := strconv.Atoi(lit.Value)
			if err != nil {
				t.Fatal(err)
			}
			if neg {
				v = -v
			}
			vs = append(vs, v)
		}
		return vs
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.ValueSpec:
			if len(d.Names) != 1 || len(d.Values) != 1 {
				return true
			}
			cl, isLit := d.Values[0].(*ast.CompositeLit)
			switch d.Names[0].Name {
			case lt + "EventNames":
				if isLit {
					out.events = strArray(cl)
				}
			case lt + "StateNames":
				if isLit {
					out.states = strArray(cl)
				}
			case lt + "Next":
				if isLit {
					out.next = intArray(cl)
				}
			case typeName + "Init":
				if lit, ok := d.Values[0].(*ast.BasicLit); ok {
					v, err := strconv.Atoi(lit.Value)
					if err != nil {
						t.Fatal(err)
					}
					out.init = v
				}
			}
		}
		return true
	})
	if out.events == nil || out.states == nil || out.next == nil || out.init < 0 {
		t.Fatalf("could not extract table arrays from generated source")
	}
	return out
}

// checkGeneratedTable generates table-backend source for s, type-checks it,
// and compares the embedded arrays cell-for-cell against convrt.Compile —
// the generated Go and the runtime table are the same machine. (convrt's
// differential suite closes the loop to spec.TraceTracker.)
func checkGeneratedTable(t *testing.T, s *spec.Spec) {
	t.Helper()
	const typeName = "Gen"
	src, err := Generate(s, Config{Package: "gen", Type: typeName, Backend: BackendTable})
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	f := typeCheckGenerated(t, "gen.go", src)
	got := extractTable(t, f, typeName)
	tab, err := convrt.Compile(s)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if len(got.events) != tab.NumEvents() || len(got.states) != tab.NumStates() {
		t.Fatalf("%s: shape %d×%d, want %d×%d", s.Name(),
			len(got.states), len(got.events), tab.NumStates(), tab.NumEvents())
	}
	if got.init != int(tab.Init()) {
		t.Fatalf("%s: init %d, want %d", s.Name(), got.init, tab.Init())
	}
	for i, e := range got.events {
		if spec.Event(e) != tab.EventName(int32(i)) {
			t.Fatalf("%s: event %d = %q, want %q", s.Name(), i, e, tab.EventName(int32(i)))
		}
	}
	for i, name := range got.states {
		if name != tab.StateName(int32(i)) {
			t.Fatalf("%s: state %d = %q, want %q", s.Name(), i, name, tab.StateName(int32(i)))
		}
	}
	if len(got.next) != tab.NumStates()*tab.NumEvents() {
		t.Fatalf("%s: %d cells, want %d", s.Name(), len(got.next), tab.NumStates()*tab.NumEvents())
	}
	for st := 0; st < tab.NumStates(); st++ {
		for ev := 0; ev < tab.NumEvents(); ev++ {
			want, ok := tab.Step(int32(st), int32(ev))
			if !ok {
				want = -1
			}
			if cell := got.next[st*tab.NumEvents()+ev]; cell != int(want) {
				t.Fatalf("%s: cell (%d,%d) = %d, want %d", s.Name(), st, ev, cell, want)
			}
		}
	}
}

func TestGenerateTableColocated(t *testing.T) {
	pruned, _ := generateColocated(t)
	checkGeneratedTable(t, pruned)

	// The emitted API surface.
	src, err := Generate(pruned, Config{Package: "abns", Type: "ABNS", Backend: BackendTable})
	if err != nil {
		t.Fatal(err)
	}
	f := typeCheckGenerated(t, "abns.go", src)
	want := map[string]bool{"NewABNS": false, "Reset": false, "State": false, "StateIndex": false,
		"Enabled": false, "EnabledIDs": false, "Step": false, "StepID": false, "EventID": false}
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			if _, tracked := want[fd.Name.Name]; tracked {
				want[fd.Name.Name] = true
			}
		}
		return true
	})
	for name, seen := range want {
		if !seen {
			t.Errorf("generated table code missing %s", name)
		}
	}
}

func TestGenerateUnknownBackend(t *testing.T) {
	s := spec.NewBuilder("x").Init("a").Ext("a", "x", "a").MustBuild()
	if _, err := Generate(s, Config{Backend: "llvm"}); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("Generate = %v, want unknown-backend error", err)
	}
	// The two named backends and the default all work.
	for _, b := range []string{"", BackendSwitch, BackendTable} {
		if _, err := Generate(s, Config{Backend: b}); err != nil {
			t.Fatalf("backend %q: %v", b, err)
		}
	}
}

// TestGenerateTableDifferentialCorpus is the generated-Go leg of the
// differential satellite: every specs/ fixture that is converter-shaped,
// the paper systems, and 25 protosmith-derived converters all generate
// type-checking source whose arrays equal the runtime table.
func TestGenerateTableDifferentialCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no specs/ fixtures found")
	}
	covered := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := dsl.Parse(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, s := range ss {
			if s.NumInternalTransitions() > 0 || !s.DeterministicExternal() {
				continue
			}
			covered++
			s := s
			t.Run(filepath.Base(file)+":"+s.Name(), func(t *testing.T) {
				checkGeneratedTable(t, s)
			})
		}
	}
	if covered == 0 {
		t.Fatal("no eligible fixtures")
	}

	// Paper system beyond the colocated one covered above: chain(2).
	fam, err := specgen.ParseFamily("chain(2)")
	if err != nil {
		t.Fatal(err)
	}
	env, err := compose.Many(fam.Components...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Derive(fam.Service, env, core.Options{OmitVacuous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("chain2", func(t *testing.T) { checkGeneratedTable(t, res.Converter) })
	t.Run("colocated-maximal", func(t *testing.T) {
		r, err := core.Derive(protocols.Service(), protocols.ColocatedB(), core.Options{OmitVacuous: true})
		if err != nil {
			t.Fatal(err)
		}
		checkGeneratedTable(t, r.Converter)
	})

	if testing.Short() {
		t.Skip("skipping protosmith sweep in -short mode")
	}
	const want = 25
	found := 0
	for seed := int64(0); seed < 400 && found < want; seed++ {
		sys := protosmith.Generate(seed, protosmith.DefaultKnobs())
		env, err := compose.Many(sys.Components...)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.Derive(sys.Service, env, core.Options{OmitVacuous: true, MaxStates: 1 << 16})
		if err != nil || !res.Exists {
			continue
		}
		found++
		t.Run(fmt.Sprintf("protosmith-seed%d", seed), func(t *testing.T) {
			checkGeneratedTable(t, res.Converter)
		})
	}
	if found < want {
		t.Fatalf("only %d derivable converters in 400 seeds, want %d", found, want)
	}
}

// TestEventIdentCollisions is the regression for the exportedIdent
// collision: "+d0" and "-d0" used to mangle to the same identifier, so a
// converter alphabet — which pairs them by construction — generated
// duplicate constants. The polarity prefixes plus deterministic "_n"
// disambiguation must keep every distinct event name distinct.
func TestEventIdentCollisions(t *testing.T) {
	s := spec.NewBuilder("collide").
		Init("a").
		Ext("a", "+d0", "b").
		Ext("b", "-d0", "a"). // polarity pair of +d0
		Ext("a", "x.y", "a"). // mangles to XY …
		Ext("a", "x_y", "a"). // … and so does this
		Ext("a", "xy", "a").  // … and this
		Ext("b", "***", "b"). // mangles to nothing at all
		Ext("b", "###", "b"). // … twice
		MustBuild()
	src, err := Generate(s, Config{Package: "c", Type: "C", Backend: BackendTable})
	if err != nil {
		t.Fatal(err)
	}
	// Type-checking alone proves no duplicate constants were emitted.
	f := typeCheckGenerated(t, "c.go", src)

	// Both polarity constants exist under distinct names.
	consts := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if vs, ok := n.(*ast.ValueSpec); ok {
			for _, name := range vs.Names {
				consts[name.Name] = true
			}
		}
		return true
	})
	for _, want := range []string{"CEvRecvD0", "CEvSendD0"} {
		if !consts[want] {
			t.Errorf("missing constant %s in\n%s", want, src)
		}
	}

	// Determinism: regeneration is byte-identical.
	src2, err := Generate(s, Config{Package: "c", Type: "C", Backend: BackendTable})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, src2) {
		t.Fatal("generation is not deterministic")
	}
	// And the machine arrays still match the runtime table exactly.
	checkGeneratedTable(t, s)
}

func TestDisambiguate(t *testing.T) {
	got := disambiguate([]string{"+d0", "-d0", "x.y", "x_y", "xy", "***", "###"}, eventIdent, "Event")
	want := []string{"RecvD0", "SendD0", "XY", "XY_2", "Xy", "Event5", "Event6"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ident %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	seen := map[string]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate identifier %q in %v", id, got)
		}
		seen[id] = true
	}
}
