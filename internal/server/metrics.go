package server

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow keeps the most recent N observations of one latency class
// and answers percentile queries over them. A sliding window is the right
// shape for an always-on daemon: quantiles track current behavior instead
// of being diluted by hours-old history.
type latencyWindow struct {
	mu   sync.Mutex
	buf  []float64 // milliseconds, ring
	next int
	full bool
}

const latencyWindowSize = 1024

func newLatencyWindow() *latencyWindow {
	return &latencyWindow{buf: make([]float64, latencyWindowSize)}
}

func (w *latencyWindow) observe(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	w.mu.Lock()
	w.buf[w.next] = ms
	w.next++
	if w.next == len(w.buf) {
		w.next, w.full = 0, true
	}
	w.mu.Unlock()
}

// quantiles returns the q-th percentiles (q in [0,100]) over the window,
// or zeros when nothing was observed.
func (w *latencyWindow) quantiles(qs ...float64) []float64 {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	sample := make([]float64, n)
	copy(sample, w.buf[:n])
	w.mu.Unlock()
	out := make([]float64, len(qs))
	if n == 0 {
		return out
	}
	sort.Float64s(sample)
	for i, q := range qs {
		idx := int(q / 100 * float64(n-1))
		out[i] = sample[idx]
	}
	return out
}

// serverMetrics is the daemon's counter set. Everything is monotonic except
// the gauges read live from the pool; /v1/stats and expvar both render a
// snapshot of it (the wire shape is api.StatsResponse).
type serverMetrics struct {
	requests       atomic.Int64 // all HTTP requests
	deriveRequests atomic.Int64 // POST /v1/derive
	derives        atomic.Int64 // engine runs started (post-coalescing)
	deriveErrors   atomic.Int64 // engine runs failing for non-semantic reasons
	noQuotient     atomic.Int64 // definitive nonexistence results
	coalesced      atomic.Int64 // requests that shared another's flight
	rejected       atomic.Int64 // load-shed (queue full)
	timeouts       atomic.Int64 // per-request deadline exceeded

	peerFills       atomic.Int64 // local misses answered by the owner shard
	peerUnavailable atomic.Int64 // owner fetches that fell back to local derivation
	peerServed      atomic.Int64 // peer-fill requests answered for other shards
	hotReplicated   atomic.Int64 // foreign-owned entries replicated locally (hot keys)

	warm *latencyWindow // request latency on cache hits
	cold *latencyWindow // request latency on engine runs
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{warm: newLatencyWindow(), cold: newLatencyWindow()}
}

// expvarOnce guards process-wide expvar publication: expvar names are
// global and re-publishing panics, while tests construct many Servers.
var expvarOnce sync.Once

// PublishExpvar exposes this server's stats snapshot as the expvar variable
// "quotd" (rendered by the stock /debug/vars handler, which Handler serves).
// Only the first server in the process wins the name; later calls are
// no-ops, matching expvar's process-global model.
func (s *Server) PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("quotd", expvar.Func(func() any { return s.statsSnapshot() }))
	})
}
