package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"protoquot/internal/compose"
	"protoquot/internal/core"
	"protoquot/internal/dsl"
	"protoquot/internal/spec"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// PoolWorkers is how many derivations may run concurrently; default
	// GOMAXPROCS. MaxQueue is how many more may wait; default 64; beyond
	// that requests are shed with 503. MaxQueue < 0 means no queue: every
	// request must win a slot immediately or be shed.
	PoolWorkers int
	MaxQueue    int
	// EngineWorkers is the default per-derivation safety-phase worker
	// count (requests may override); default 1. The engine result is
	// bit-identical for every value, so this is purely a latency knob.
	EngineWorkers int
	// CacheEntries bounds the in-memory converter cache; default 1024.
	// CacheDir, when set, adds write-through disk persistence.
	CacheEntries int
	CacheDir     string
	// DefaultTimeout bounds a derivation when the request does not ask;
	// MaxTimeout clamps what a request may ask for. Defaults 30s / 5m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxStatesCap, when > 0, caps every derivation's safety-phase state
	// count, including requests that asked for no limit — the daemon-side
	// guard against PSPACE-hard inputs from untrusted clients.
	MaxStatesCap int
	// MaxBodyBytes bounds request bodies; default 8 MiB.
	MaxBodyBytes int64
	// Logf receives one structured line per request plus cache/persistence
	// diagnostics; nil disables logging.
	Logf func(format string, v ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PoolWorkers <= 0 {
		out.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 64
	}
	if out.EngineWorkers <= 0 {
		out.EngineWorkers = 1
	}
	if out.CacheEntries <= 0 {
		out.CacheEntries = 1024
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 30 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 5 * time.Minute
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 8 << 20
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Server is the quotd derivation service. Construct with New, mount
// Handler() on an http.Server, and on SIGTERM call StartDrain, let the
// http.Server drain (http.Server.Shutdown), then Abort to cancel whatever
// is still inside the engine.
type Server struct {
	cfg     Config
	logf    func(format string, v ...any)
	cache   *Cache
	pool    *pool
	flights *flightGroup
	met     *serverMetrics
	mux     *http.ServeMux
	start   time.Time

	draining atomic.Bool
	baseCtx  context.Context
	abort    context.CancelFunc
	reqSeq   atomic.Int64

	regMu    sync.RWMutex
	registry map[string]*spec.Spec

	// preDerive, when non-nil, is called by a flight leader after it holds
	// a pool slot and before it enters the engine. Test hook: lets tests
	// make singleflight coalescing deterministic.
	preDerive func(key string)
}

// New builds a Server. The only error source is an unusable cache
// directory.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		logf:     cfg.Logf,
		pool:     newPool(cfg.PoolWorkers, cfg.MaxQueue),
		flights:  newFlightGroup(),
		met:      newServerMetrics(),
		start:    time.Now(),
		registry: make(map[string]*spec.Spec),
	}
	cache, err := NewCache(cfg.CacheEntries, cfg.CacheDir, cfg.Logf)
	if err != nil {
		return nil, err
	}
	s.cache = cache
	s.baseCtx, s.abort = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// StartDrain flips readiness to not-ready. In-flight and queued requests
// keep running; new work is still accepted on this handler (connection
// draining is the listener's job — http.Server.Shutdown), but load
// balancers watching /readyz stop sending traffic.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Abort cancels the base context every derivation runs under, aborting
// whatever is still inside the engine via DeriveContext cancellation. Call
// it after the drain deadline, not before.
func (s *Server) Abort() { s.abort() }

// Cache exposes the converter cache (read-mostly; used by stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// RegisterSpec adds or replaces a named specification in the reference
// registry, as POST /v1/specs would.
func (s *Server) RegisterSpec(sp *spec.Spec) {
	s.regMu.Lock()
	s.registry[sp.Name()] = sp
	s.regMu.Unlock()
}

func (s *Server) lookupSpec(name string) (*spec.Spec, bool) {
	s.regMu.RLock()
	sp, ok := s.registry[name]
	s.regMu.RUnlock()
	return sp, ok
}

func (s *Server) specCount() int {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return len(s.registry)
}

func (s *Server) listSpecs() []SpecInfo {
	s.regMu.RLock()
	out := make([]SpecInfo, 0, len(s.registry))
	for _, sp := range s.registry {
		out = append(out, specInfo(sp))
	}
	s.regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// compiledRequest is a DeriveRequest after resolution and validation:
// parsed specs, effective options, and the content address.
type compiledRequest struct {
	key      string
	a        *spec.Spec
	envs     []*spec.Spec
	comps    []*spec.Spec
	engine   string // "lazy" or "indexed"; only used with comps
	coreOpts core.Options
	prune    bool
	minimize bool
	timeout  time.Duration
}

// resolveSource turns one SpecSource into a parsed spec.
func (s *Server) resolveSource(role string, src SpecSource) (*spec.Spec, *WireError) {
	switch {
	case src.Inline != "" && src.Ref != "":
		return nil, &WireError{Code: ErrCodeBadRequest,
			Message: fmt.Sprintf("%s: give inline or ref, not both", role)}
	case src.Inline != "":
		sp, err := dsl.ParseString(src.Inline)
		if err != nil {
			return nil, &WireError{Code: ErrCodeBadRequest,
				Message: fmt.Sprintf("%s: %v", role, err)}
		}
		return sp, nil
	case src.Ref != "":
		sp, ok := s.lookupSpec(src.Ref)
		if !ok {
			return nil, &WireError{Code: ErrCodeNotFound,
				Message: fmt.Sprintf("%s: no uploaded spec named %q", role, src.Ref)}
		}
		return sp, nil
	default:
		return nil, &WireError{Code: ErrCodeBadRequest,
			Message: fmt.Sprintf("%s: empty spec source", role)}
	}
}

// compile validates and resolves a request, normalizes the service, applies
// server-side caps, and computes the cache key from the effective inputs.
func (s *Server) compile(req *DeriveRequest) (*compiledRequest, *WireError) {
	a, werr := s.resolveSource("service", req.Service)
	if werr != nil {
		return nil, werr
	}
	if err := a.IsNormalForm(); err != nil {
		if !req.Options.Normalize {
			return nil, &WireError{Code: ErrCodeBadRequest,
				Message: fmt.Sprintf("service: %v (set options.normalize)", err)}
		}
		a = a.Normalize()
	}
	if len(req.Envs) == 0 && len(req.Components) == 0 {
		return nil, &WireError{Code: ErrCodeBadRequest,
			Message: "give envs (robust variants) or components (to compose)"}
	}
	if len(req.Envs) > 0 && len(req.Components) > 0 {
		return nil, &WireError{Code: ErrCodeBadRequest,
			Message: "envs and components are mutually exclusive"}
	}
	cr := &compiledRequest{a: a}
	for i, src := range req.Envs {
		sp, werr := s.resolveSource(fmt.Sprintf("envs[%d]", i), src)
		if werr != nil {
			return nil, werr
		}
		cr.envs = append(cr.envs, sp)
	}
	for i, src := range req.Components {
		sp, werr := s.resolveSource(fmt.Sprintf("components[%d]", i), src)
		if werr != nil {
			return nil, werr
		}
		cr.comps = append(cr.comps, sp)
	}
	switch req.Options.Engine {
	case "", "lazy":
		cr.engine = "lazy"
	case "indexed":
		cr.engine = "indexed"
	default:
		return nil, &WireError{Code: ErrCodeBadRequest,
			Message: fmt.Sprintf("options.engine: unknown engine %q (lazy or indexed)", req.Options.Engine)}
	}

	maxStates := req.Options.MaxStates
	if s.cfg.MaxStatesCap > 0 && (maxStates == 0 || maxStates > s.cfg.MaxStatesCap) {
		maxStates = s.cfg.MaxStatesCap
	}
	workers := req.Options.Workers
	if workers <= 0 {
		workers = s.cfg.EngineWorkers
	}
	cr.coreOpts = core.Options{
		OmitVacuous:        req.Options.OmitVacuous,
		SafetyOnly:         req.Options.SafetyOnly,
		MaxStates:          maxStates,
		MinimizeComponents: req.Options.MinimizeEnv,
		Workers:            workers,
	}
	cr.prune = req.Options.Prune
	cr.minimize = req.Options.Minimize

	cr.timeout = s.cfg.DefaultTimeout
	if req.Options.TimeoutMS > 0 {
		cr.timeout = time.Duration(req.Options.TimeoutMS) * time.Millisecond
	}
	if cr.timeout > s.cfg.MaxTimeout {
		cr.timeout = s.cfg.MaxTimeout
	}

	keyed := req.Options
	keyed.MaxStates = maxStates // key on the effective bound, not the asked one
	cr.key = CacheKey(a, cr.envs, cr.comps, keyed)
	return cr, nil
}

// executeDerivation runs the engine for one compiled request and returns
// either a cacheable entry (converter, or definitive nonexistence) or a
// non-cacheable error. It is only ever called by a flight leader holding a
// pool slot.
func (s *Server) executeDerivation(cr *compiledRequest) flightResult {
	dctx, cancel := context.WithTimeout(s.baseCtx, cr.timeout)
	defer cancel()

	var res *core.Result
	var derr error
	switch {
	case len(cr.comps) > 0 && cr.engine == "indexed":
		x, err := compose.IndexedMany(cr.comps...)
		if err != nil {
			return flightResult{err: &WireError{Code: ErrCodeBadRequest, Message: err.Error()}}
		}
		res, derr = core.DeriveEnvContext(dctx, cr.a, x, cr.coreOpts)
	case len(cr.comps) > 0:
		x, err := compose.LazyMany(cr.comps...)
		if err != nil {
			return flightResult{err: &WireError{Code: ErrCodeBadRequest, Message: err.Error()}}
		}
		res, derr = core.DeriveEnvContext(dctx, cr.a, x, cr.coreOpts)
	default:
		res, derr = core.DeriveRobustContext(dctx, cr.a, cr.envs, cr.coreOpts)
	}

	if derr != nil {
		var nq *core.NoQuotientError
		switch {
		case errors.As(derr, &nq):
			env := ResultEnvelope(cr.key, res, nil, derr)
			s.met.noConverter.Add(1)
			return flightResult{entry: &cacheEntry{
				Key: cr.key, Exists: false, Stats: env.Stats, Error: env.Error,
			}}
		case errors.Is(derr, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			return flightResult{err: &WireError{Code: ErrCodeTimeout,
				Message: fmt.Sprintf("derivation exceeded %v: %v", cr.timeout, derr)}}
		case errors.Is(derr, context.Canceled):
			return flightResult{err: &WireError{Code: ErrCodeCanceled,
				Message: "derivation canceled by server shutdown"}}
		default:
			// Engine precondition failures (alphabet mismatches, MaxStates
			// exceeded, …) are the client's input, not server faults.
			return flightResult{err: &WireError{Code: ErrCodeBadRequest, Message: derr.Error()}}
		}
	}

	conv := res.Converter
	if cr.prune && !cr.coreOpts.SafetyOnly {
		envs := cr.envs
		if len(cr.comps) > 0 {
			b, err := compose.Many(cr.comps...)
			if err != nil {
				return flightResult{err: &WireError{Code: ErrCodeBadRequest, Message: err.Error()}}
			}
			envs = []*spec.Spec{b}
		}
		pruned, err := core.PruneRobust(cr.a, envs, conv)
		if err != nil {
			return flightResult{err: &WireError{Code: ErrCodeInternal,
				Message: fmt.Sprintf("prune: %v", err)}}
		}
		conv = pruned
	}
	if cr.minimize {
		conv = conv.Minimize()
	}
	env := ResultEnvelope(cr.key, res, conv, nil)
	return flightResult{entry: &cacheEntry{
		Key: cr.key, Exists: true, Converter: env.Converter, Stats: env.Stats,
	}}
}

func (s *Server) statsSnapshot() StatsResponse {
	hits, misses, evictions, diskHits, diskErrors := s.cache.Counters()
	queue, inflight := s.pool.depths()
	warm := s.met.warm.quantiles(50, 99)
	cold := s.met.cold.quantiles(50, 99)
	return StatsResponse{
		UptimeMS: durMS(time.Since(s.start)),
		Draining: s.draining.Load(),

		Requests:       s.met.requests.Load(),
		DeriveRequests: s.met.deriveRequests.Load(),
		Derives:        s.met.derives.Load(),
		DeriveErrors:   s.met.deriveErrors.Load(),
		NoConverter:    s.met.noConverter.Load(),
		Coalesced:      s.met.coalesced.Load(),
		Rejected:       s.met.rejected.Load(),
		Timeouts:       s.met.timeouts.Load(),

		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvictions:  evictions,
		CacheDiskHits:   diskHits,
		CacheDiskErrors: diskErrors,
		CacheEntries:    s.cache.Len(),

		QueueDepth:  queue,
		Inflight:    inflight,
		PoolWorkers: s.cfg.PoolWorkers,
		MaxQueue:    max(0, s.cfg.MaxQueue),

		SpecsRegistered: s.specCount(),

		WarmP50MS: warm[0],
		WarmP99MS: warm[1],
		ColdP50MS: cold[0],
		ColdP99MS: cold[1],
	}
}
