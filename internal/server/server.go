// Package server implements quotd, the long-running derivation service: an
// HTTP/JSON daemon that accepts specification uploads and derivation
// requests, runs derivations on a bounded worker pool with per-request
// deadlines and cancellation, deduplicates identical in-flight requests
// (singleflight), and serves repeat requests from a content-addressed
// converter cache keyed by the canonical hash of the inputs.
//
// The quotient is a pure function of its (A, B) inputs — the Calvert & Lam
// construction is deterministic and complete — so a derivation result may
// be cached under a key derived from the canonical serialization of every
// input specification plus the semantic options (DESIGN.md argues the
// soundness of this in detail). Repeat and concurrent requests then cost
// O(lookup) instead of O(derive).
//
// The wire contract — request/response envelopes, error codes, the cache
// key — lives in internal/api, shared with `quotient -json`, the load
// harness, and quotd's own shard-to-shard traffic. Several servers form a
// sharded cluster via StartCluster: each derivation key has one owner on a
// consistent-hash ring, a local miss is filled from the owner before the
// local engine runs, and the per-node singleflight then composes into a
// cluster-wide one (see cluster.go).
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"protoquot/internal/api"
	"protoquot/internal/compose"
	"protoquot/internal/convrt"
	"protoquot/internal/core"
	"protoquot/internal/dsl"
	"protoquot/internal/spec"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// PoolWorkers is how many derivations may run concurrently; default
	// GOMAXPROCS. MaxQueue is how many more may wait; default 64; beyond
	// that requests are shed with 503. MaxQueue < 0 means no queue: every
	// request must win a slot immediately or be shed.
	PoolWorkers int
	MaxQueue    int
	// EngineWorkers is the default per-derivation safety-phase worker
	// count (requests may override); default 1. The engine result is
	// bit-identical for every value, so this is purely a latency knob.
	EngineWorkers int
	// CacheEntries bounds the in-memory converter cache; default 1024.
	// CacheDir, when set, adds write-through disk persistence.
	CacheEntries int
	CacheDir     string
	// DefaultTimeout bounds a derivation when the request does not ask;
	// MaxTimeout clamps what a request may ask for. Defaults 30s / 5m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxStatesCap, when > 0, caps every derivation's safety-phase state
	// count, including requests that asked for no limit — the daemon-side
	// guard against PSPACE-hard inputs from untrusted clients.
	MaxStatesCap int
	// MaxBodyBytes bounds request bodies; default 8 MiB.
	MaxBodyBytes int64
	// Logf receives one structured line per request plus cache/persistence
	// diagnostics; nil disables logging.
	Logf func(format string, v ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PoolWorkers <= 0 {
		out.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 64
	}
	if out.EngineWorkers <= 0 {
		out.EngineWorkers = 1
	}
	if out.CacheEntries <= 0 {
		out.CacheEntries = 1024
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 30 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 5 * time.Minute
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 8 << 20
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Server is the quotd derivation service. Construct with New, mount
// Handler() on an http.Server, and on SIGTERM call StartDrain, let the
// http.Server drain (http.Server.Shutdown), then Abort to cancel whatever
// is still inside the engine.
type Server struct {
	cfg     Config
	logf    func(format string, v ...any)
	cache   *Cache
	pool    *pool
	flights *flightGroup
	met     *serverMetrics
	mux     *http.ServeMux
	start   time.Time

	// cluster is nil on a single node; StartCluster swaps in the shard
	// state. Handlers read the snapshot once per request.
	cluster atomic.Pointer[clusterState]

	draining atomic.Bool
	baseCtx  context.Context
	abort    context.CancelFunc
	reqSeq   atomic.Int64

	regMu    sync.RWMutex
	registry map[string]*spec.Spec

	// preDerive, when non-nil, is called by a flight leader after it holds
	// a pool slot and before it enters the engine. Test hook: lets tests
	// make singleflight coalescing deterministic.
	preDerive func(key string)
}

// New builds a Server. The only error source is an unusable cache
// directory.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		logf:     cfg.Logf,
		pool:     newPool(cfg.PoolWorkers, cfg.MaxQueue),
		flights:  newFlightGroup(),
		met:      newServerMetrics(),
		start:    time.Now(),
		registry: make(map[string]*spec.Spec),
	}
	cache, err := NewCache(cfg.CacheEntries, cfg.CacheDir, cfg.Logf)
	if err != nil {
		return nil, err
	}
	s.cache = cache
	s.baseCtx, s.abort = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// StartDrain flips readiness to not-ready. In-flight and queued requests
// keep running; new work is still accepted on this handler (connection
// draining is the listener's job — http.Server.Shutdown), but load
// balancers watching /readyz stop sending traffic.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Abort cancels the base context every derivation runs under, aborting
// whatever is still inside the engine via DeriveContext cancellation. Call
// it after the drain deadline, not before.
func (s *Server) Abort() { s.abort() }

// Cache exposes the converter cache (read-mostly; used by stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// RegisterSpec adds or replaces a named specification in the reference
// registry, as POST /v1/specs would.
func (s *Server) RegisterSpec(sp *spec.Spec) {
	s.regMu.Lock()
	s.registry[sp.Name()] = sp
	s.regMu.Unlock()
}

func (s *Server) lookupSpec(name string) (*spec.Spec, bool) {
	s.regMu.RLock()
	sp, ok := s.registry[name]
	s.regMu.RUnlock()
	return sp, ok
}

func (s *Server) specCount() int {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return len(s.registry)
}

func (s *Server) listSpecs() []api.SpecInfo {
	s.regMu.RLock()
	out := make([]api.SpecInfo, 0, len(s.registry))
	for _, sp := range s.registry {
		out = append(out, specInfo(sp))
	}
	s.regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// compiledRequest is a DeriveRequest after resolution and validation:
// parsed specs, effective options, and the content address.
type compiledRequest struct {
	key      string
	a        *spec.Spec
	envs     []*spec.Spec
	comps    []*spec.Spec
	engine   string // "lazy" or "indexed"; only used with comps
	coreOpts core.Options
	prune    bool
	minimize bool
	timeout  time.Duration
}

// resolveSource turns one SpecSource into a parsed spec. Parse failures
// carry the input's role and line (bad_spec); a dangling reference is
// not_found.
func (s *Server) resolveSource(role string, src api.SpecSource) (*spec.Spec, *api.Error) {
	switch {
	case src.Inline != "" && src.Ref != "":
		return nil, &api.Error{Code: api.ErrCodeBadRequest,
			Message: fmt.Sprintf("%s: give inline or ref, not both", role)}
	case src.Inline != "":
		sp, err := dsl.ParseString(src.Inline)
		if err != nil {
			return nil, api.SpecError(role, err)
		}
		return sp, nil
	case src.Ref != "":
		sp, ok := s.lookupSpec(src.Ref)
		if !ok {
			return nil, &api.Error{Code: api.ErrCodeNotFound,
				Message: fmt.Sprintf("%s: no uploaded spec named %q", role, src.Ref)}
		}
		return sp, nil
	default:
		return nil, &api.Error{Code: api.ErrCodeBadRequest,
			Message: fmt.Sprintf("%s: empty spec source", role)}
	}
}

// compile validates and resolves a request, normalizes the service, applies
// server-side caps, and computes the cache key from the effective inputs.
func (s *Server) compile(req *api.DeriveRequest) (*compiledRequest, *api.Error) {
	a, werr := s.resolveSource("service", req.Service)
	if werr != nil {
		return nil, werr
	}
	if err := a.IsNormalForm(); err != nil {
		if !req.Options.Normalize {
			return nil, &api.Error{Code: api.ErrCodeBadRequest,
				Message: fmt.Sprintf("service: %v (set options.normalize)", err)}
		}
		a = a.Normalize()
	}
	if len(req.Envs) == 0 && len(req.Components) == 0 {
		return nil, &api.Error{Code: api.ErrCodeBadRequest,
			Message: "give envs (robust variants) or components (to compose)"}
	}
	if len(req.Envs) > 0 && len(req.Components) > 0 {
		return nil, &api.Error{Code: api.ErrCodeBadRequest,
			Message: "envs and components are mutually exclusive"}
	}
	cr := &compiledRequest{a: a}
	for i, src := range req.Envs {
		sp, werr := s.resolveSource(fmt.Sprintf("envs[%d]", i), src)
		if werr != nil {
			return nil, werr
		}
		cr.envs = append(cr.envs, sp)
	}
	for i, src := range req.Components {
		sp, werr := s.resolveSource(fmt.Sprintf("components[%d]", i), src)
		if werr != nil {
			return nil, werr
		}
		cr.comps = append(cr.comps, sp)
	}
	switch req.Options.Engine {
	case "", "lazy":
		cr.engine = "lazy"
	case "indexed":
		cr.engine = "indexed"
	default:
		return nil, &api.Error{Code: api.ErrCodeBadRequest,
			Message: fmt.Sprintf("options.engine: unknown engine %q (lazy or indexed)", req.Options.Engine)}
	}

	maxStates := req.Options.MaxStates
	if s.cfg.MaxStatesCap > 0 && (maxStates == 0 || maxStates > s.cfg.MaxStatesCap) {
		maxStates = s.cfg.MaxStatesCap
	}
	workers := req.Options.Workers
	if workers <= 0 {
		workers = s.cfg.EngineWorkers
	}
	cr.coreOpts = core.Options{
		OmitVacuous:        req.Options.OmitVacuous,
		SafetyOnly:         req.Options.SafetyOnly,
		MaxStates:          maxStates,
		MinimizeComponents: req.Options.MinimizeEnv,
		Workers:            workers,
	}
	cr.prune = req.Options.Prune
	cr.minimize = req.Options.Minimize

	cr.timeout = s.cfg.DefaultTimeout
	if req.Options.TimeoutMS > 0 {
		cr.timeout = time.Duration(req.Options.TimeoutMS) * time.Millisecond
	}
	if cr.timeout > s.cfg.MaxTimeout {
		cr.timeout = s.cfg.MaxTimeout
	}

	keyed := req.Options
	keyed.MaxStates = maxStates // key on the effective bound, not the asked one
	cr.key = api.CacheKey(a, cr.envs, cr.comps, keyed)
	return cr, nil
}

// executeDerivation runs the engine for one compiled request and returns
// either a cacheable artifact (converter, or definitive nonexistence) or a
// non-cacheable error. It is only ever called by a flight leader holding a
// pool slot.
func (s *Server) executeDerivation(cr *compiledRequest) flightResult {
	dctx, cancel := context.WithTimeout(s.baseCtx, cr.timeout)
	defer cancel()

	var res *core.Result
	var derr error
	switch {
	case len(cr.comps) > 0 && cr.engine == "indexed":
		x, err := compose.IndexedMany(cr.comps...)
		if err != nil {
			return flightResult{err: &api.Error{Code: api.ErrCodeBadRequest, Message: err.Error()}}
		}
		res, derr = core.DeriveEnvContext(dctx, cr.a, x, cr.coreOpts)
	case len(cr.comps) > 0:
		x, err := compose.LazyMany(cr.comps...)
		if err != nil {
			return flightResult{err: &api.Error{Code: api.ErrCodeBadRequest, Message: err.Error()}}
		}
		res, derr = core.DeriveEnvContext(dctx, cr.a, x, cr.coreOpts)
	default:
		res, derr = core.DeriveRobustContext(dctx, cr.a, cr.envs, cr.coreOpts)
	}

	if derr != nil {
		var nq *core.NoQuotientError
		switch {
		case errors.As(derr, &nq):
			env := api.ResultEnvelope(cr.key, res, nil, derr)
			s.met.noQuotient.Add(1)
			return flightResult{entry: &api.Artifact{
				Key: cr.key, Exists: false, Stats: env.Stats, Error: env.Error,
			}}
		case errors.Is(derr, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			return flightResult{err: &api.Error{Code: api.ErrCodeDeadline,
				Message: fmt.Sprintf("derivation exceeded %v: %v", cr.timeout, derr)}}
		case errors.Is(derr, context.Canceled):
			return flightResult{err: &api.Error{Code: api.ErrCodeCanceled,
				Message: "derivation canceled by server shutdown"}}
		default:
			// Engine precondition failures (alphabet mismatches, MaxStates
			// exceeded, …) are the client's input, not server faults.
			return flightResult{err: &api.Error{Code: api.ErrCodeBadRequest, Message: derr.Error()}}
		}
	}

	conv := res.Converter
	if cr.prune && !cr.coreOpts.SafetyOnly {
		envs := cr.envs
		if len(cr.comps) > 0 {
			b, err := compose.Many(cr.comps...)
			if err != nil {
				return flightResult{err: &api.Error{Code: api.ErrCodeBadRequest, Message: err.Error()}}
			}
			envs = []*spec.Spec{b}
		}
		pruned, err := core.PruneRobust(cr.a, envs, conv)
		if err != nil {
			return flightResult{err: &api.Error{Code: api.ErrCodeInternal,
				Message: fmt.Sprintf("prune: %v", err)}}
		}
		conv = pruned
	}
	if cr.minimize {
		conv = conv.Minimize()
	}
	env := api.ResultEnvelope(cr.key, res, conv, nil)
	entry := &api.Artifact{
		Key: cr.key, Exists: true, Converter: env.Converter, Stats: env.Stats,
	}
	// Attach the compiled-table artifact class. Best-effort: every pruned or
	// quotient converter compiles, and an artifact without a table is still
	// complete (readers rebuild it from the converter).
	if table, err := convrt.CompileEncoded(conv); err == nil {
		entry.Table = string(table)
	}
	return flightResult{entry: entry}
}

// deriveFlight is the node-local engine path shared by client derivations
// and peer fills: singleflight around pool + engine. The caller has already
// missed the cache; successful (cacheable) outcomes are stored before being
// returned.
func (s *Server) deriveFlight(ctx context.Context, cr *compiledRequest) (e *api.Artifact, coalesced bool, werr *api.Error) {
	fr, joined, err := s.flights.do(ctx, cr.key, func() flightResult {
		// The queue wait draws down the same per-request budget the engine
		// runs under; the derivation itself re-derives its deadline from
		// baseCtx inside executeDerivation.
		actx, cancel := context.WithTimeout(s.baseCtx, cr.timeout)
		defer cancel()
		if err := s.pool.acquire(actx); err != nil {
			if errors.Is(err, errOverloaded) {
				s.met.rejected.Add(1)
				return flightResult{err: &api.Error{Code: api.ErrCodeQueueFull,
					Message: "derivation queue full; retry later"}}
			}
			s.met.timeouts.Add(1)
			return flightResult{err: &api.Error{Code: api.ErrCodeDeadline,
				Message: "timed out waiting for a derivation slot"}}
		}
		defer s.pool.release()
		s.met.derives.Add(1)
		if s.preDerive != nil {
			s.preDerive(cr.key)
		}
		fr := s.executeDerivation(cr)
		if fr.entry != nil {
			s.cache.Put(fr.entry)
		}
		return fr
	})
	if err != nil {
		// This request gave up waiting on someone else's flight; the flight
		// itself keeps running into the cache.
		return nil, true, &api.Error{Code: api.ErrCodeCanceled,
			Message: "request canceled while waiting for an identical in-flight derivation"}
	}
	if joined {
		s.met.coalesced.Add(1)
	}
	if fr.err != nil {
		var we *api.Error
		if !errors.As(fr.err, &we) {
			we = &api.Error{Code: api.ErrCodeInternal, Message: fr.err.Error()}
		}
		if we.Code == api.ErrCodeInternal {
			s.met.deriveErrors.Add(1)
		}
		return nil, joined, we
	}
	return fr.entry, joined, nil
}

func (s *Server) statsSnapshot() api.StatsResponse {
	hits, misses, evictions, diskHits, diskErrors := s.cache.Counters()
	queue, inflight := s.pool.depths()
	warm := s.met.warm.quantiles(50, 99)
	cold := s.met.cold.quantiles(50, 99)
	out := api.StatsResponse{
		UptimeMS: api.DurMS(time.Since(s.start)),
		Draining: s.draining.Load(),

		Requests:       s.met.requests.Load(),
		DeriveRequests: s.met.deriveRequests.Load(),
		Derives:        s.met.derives.Load(),
		DeriveErrors:   s.met.deriveErrors.Load(),
		NoQuotient:     s.met.noQuotient.Load(),
		Coalesced:      s.met.coalesced.Load(),
		Rejected:       s.met.rejected.Load(),
		Timeouts:       s.met.timeouts.Load(),

		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvictions:  evictions,
		CacheDiskHits:   diskHits,
		CacheDiskErrors: diskErrors,
		CacheEntries:    s.cache.Len(),

		QueueDepth:  queue,
		Inflight:    inflight,
		PoolWorkers: s.cfg.PoolWorkers,
		MaxQueue:    max(0, s.cfg.MaxQueue),

		SpecsRegistered: s.specCount(),

		WarmP50MS: warm[0],
		WarmP99MS: warm[1],
		ColdP50MS: cold[0],
		ColdP99MS: cold[1],
	}
	if cs := s.cluster.Load(); cs != nil {
		up, down := cs.mem.PeersUpDown()
		out.ClusterEnabled = true
		out.ClusterSelf = cs.mem.Self()
		out.ClusterPeersUp = up
		out.ClusterPeersDown = down
		out.PeerFills = s.met.peerFills.Load()
		out.PeerUnavailable = s.met.peerUnavailable.Load()
		out.PeerServed = s.met.peerServed.Load()
		out.HotReplicated = s.met.hotReplicated.Load()
	}
	return out
}
