package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"protoquot/internal/api"
	"protoquot/internal/convrt"
	"protoquot/internal/dsl"
)

// tableEntry builds an artifact carrying its compiled-table class, the way
// executeDerivation produces them.
func tableEntry(t *testing.T, i int, convText string) *api.Artifact {
	t.Helper()
	conv, err := dsl.ParseString(convText)
	if err != nil {
		t.Fatal(err)
	}
	table, err := convrt.CompileEncoded(conv)
	if err != nil {
		t.Fatal(err)
	}
	return &api.Artifact{Key: hexKey(i), Exists: true, Converter: convText,
		Table: string(table)}
}

func TestCacheTableArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	convText := "spec C\ninit c0\next c0 x c1\next c1 y c0\n"
	e := tableEntry(t, 21, convText)

	c1, err := NewCache(4, dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(e)
	sidecar, err := os.ReadFile(filepath.Join(dir, hexKey(21)+".table"))
	if err != nil {
		t.Fatalf(".table sidecar not persisted: %v", err)
	}
	if string(sidecar) != e.Table {
		t.Error("persisted .table differs from the artifact's table")
	}
	if _, err := convrt.Decode(sidecar); err != nil {
		t.Fatalf("persisted .table does not decode: %v", err)
	}

	// A restarted daemon recovers the table class with the artifact.
	c2, err := NewCache(4, dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(hexKey(21))
	if !ok {
		t.Fatal("entry not recovered from disk")
	}
	if got.Table != e.Table {
		t.Error("table class lost across the disk round trip")
	}
	if _, _, _, _, diskErrors := c2.Counters(); diskErrors != 0 {
		t.Errorf("diskErrors = %d, want 0", diskErrors)
	}
}

// TestCacheTableBackfilledForOldEntries covers entries written before the
// table class existed: storing a table-less artifact still produces the
// sidecar, and a disk read rebuilds the in-memory field from the converter.
func TestCacheTableBackfilledForOldEntries(t *testing.T) {
	dir := t.TempDir()
	convText := "spec C\ninit c0\next c0 x c0\n"
	e := &api.Artifact{Key: hexKey(22), Exists: true, Converter: convText}

	c1, _ := NewCache(4, dir, t.Logf)
	c1.Put(e)
	if _, err := os.Stat(filepath.Join(dir, hexKey(22)+".table")); err != nil {
		t.Fatalf(".table sidecar not rebuilt from the converter: %v", err)
	}
	c2, _ := NewCache(4, dir, t.Logf)
	got, ok := c2.Get(hexKey(22))
	if !ok {
		t.Fatal("entry not recovered")
	}
	if got.Table == "" {
		t.Fatal("table class not rebuilt on read")
	}
	tab, err := convrt.Decode([]byte(got.Table))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "C" || tab.NumTransitions() != 1 {
		t.Errorf("rebuilt table wrong: %s with %d transitions", tab.Name(), tab.NumTransitions())
	}
}

// TestCacheCorruptTableToleratedPerClass pins the per-class corruption
// contract: a corrupt table field is a miss for the table class only — the
// artifact itself is served, the bad bytes are dropped and rebuilt from the
// converter, and the incident is counted and logged.
func TestCacheCorruptTableToleratedPerClass(t *testing.T) {
	dir := t.TempDir()
	key := hexKey(23)
	convText := "spec C\\ninit c0\\next c0 x c0\\n"
	blob := fmt.Sprintf(`{"key":%q,"exists":true,"converter":"%s","table":"convrt-table/v1\ngarbage"}`,
		key, convText)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged strings.Builder
	c, err := NewCache(4, dir, func(f string, v ...any) {
		fmt.Fprintf(&logged, f+"\n", v...)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("artifact with corrupt table class not served")
	}
	if got.Table == "" {
		t.Fatal("table class not rebuilt after dropping corrupt bytes")
	}
	if _, err := convrt.Decode([]byte(got.Table)); err != nil {
		t.Fatalf("rebuilt table does not decode: %v", err)
	}
	if _, _, _, _, diskErrors := c.Counters(); diskErrors != 1 {
		t.Errorf("diskErrors = %d, want 1", diskErrors)
	}
	if !strings.Contains(logged.String(), "corrupt table") {
		t.Errorf("table corruption not logged: %q", logged.String())
	}
}

func TestTableRendering(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := simpleRequest()
	req.Options.IncludeTable = true
	req.Options.Prune = true
	out, code := postDerive(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, out.Error)
	}
	if out.Table == "" {
		t.Fatal("table rendering missing")
	}
	tab, err := convrt.Decode([]byte(out.Table))
	if err != nil {
		t.Fatalf("served table does not decode: %v", err)
	}
	if tab.NumStates() == 0 || tab.NumTransitions() == 0 {
		t.Errorf("served table empty: %d states, %d transitions", tab.NumStates(), tab.NumTransitions())
	}

	// The selector must not fragment the cache key, and a repeat without it
	// omits the rendering.
	plain := simpleRequest()
	plain.Options.Prune = true
	out2, _ := postDerive(t, ts.URL, plain)
	if !out2.Cached {
		t.Error("include_table fragmented the cache key")
	}
	if out2.Table != "" {
		t.Error("table returned without being requested")
	}
	// And a cached repeat with the selector serves the same bytes.
	out3, _ := postDerive(t, ts.URL, req)
	if !out3.Cached || out3.Table != out.Table {
		t.Error("cached repeat served a different table")
	}
}

// TestTableRenderingForPreTableCacheEntries drops a table-less artifact
// into the cache (an entry from an older daemon) and asserts include_table
// still renders by compiling on demand.
func TestTableRenderingForPreTableCacheEntries(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := simpleRequest()
	req.Options.Prune = true
	out, code := postDerive(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, out.Error)
	}
	e, ok := s.Cache().Get(out.Key)
	if !ok {
		t.Fatal("derived entry not cached")
	}
	old := *e
	old.Table = ""
	s.Cache().Put(&old)

	req.Options.IncludeTable = true
	out2, _ := postDerive(t, ts.URL, req)
	if !out2.Cached || out2.Table == "" {
		t.Fatalf("on-demand table for old entry missing (cached=%v)", out2.Cached)
	}
	if _, err := convrt.Decode([]byte(out2.Table)); err != nil {
		t.Fatal(err)
	}
}

// TestPeerFillCarriesTable pins the cluster path: a non-owner's fill
// returns the owner's artifact with the table class intact, so every node
// serves identical table bytes for one engine run.
func TestPeerFillCarriesTable(t *testing.T) {
	nodes := newTestCluster(t, 3, Config{}, -1)
	req := simpleRequest()
	req.Options.IncludeTable = true
	req.Options.Prune = true

	var tables []string
	for i, nd := range nodes {
		out, code := postDerive(t, nd.ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("node %d: status %d: %+v", i, code, out.Error)
		}
		if out.Table == "" {
			t.Fatalf("node %d: no table in response", i)
		}
		tables = append(tables, out.Table)
	}
	if tables[0] != tables[1] || tables[1] != tables[2] {
		t.Error("nodes served different table bytes for one key")
	}
	var derives int64
	for _, nd := range nodes {
		derives += nd.srv.statsSnapshot().Derives
	}
	if derives != 1 {
		t.Errorf("engine ran %d times, want 1 (fills must carry the table)", derives)
	}
}
