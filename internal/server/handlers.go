package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"time"

	"protoquot/internal/codegen"
	"protoquot/internal/dsl"
	"protoquot/internal/render"
	"protoquot/internal/spec"
)

// SpecUploadRequest is the body of POST /v1/specs: .spec DSL text that may
// contain several specifications. Each is registered under its own name;
// re-uploading a name replaces it (last write wins).
type SpecUploadRequest struct {
	Text string `json:"text"`
}

// SpecInfo describes one registered specification.
type SpecInfo struct {
	Name        string `json:"name"`
	Hash        string `json:"hash"`
	States      int    `json:"states"`
	ExtEdges    int    `json:"ext_edges"`
	IntEdges    int    `json:"int_edges"`
	NormalForm  bool   `json:"normal_form"`
	Alphabet    int    `json:"alphabet"`
	Determinist bool   `json:"deterministic"`
}

func specInfo(sp *spec.Spec) SpecInfo {
	return SpecInfo{
		Name:        sp.Name(),
		Hash:        sp.Hash(),
		States:      sp.NumStates(),
		ExtEdges:    sp.NumExternalTransitions(),
		IntEdges:    sp.NumInternalTransitions(),
		NormalForm:  sp.IsNormalForm() == nil,
		Alphabet:    len(sp.Alphabet()),
		Determinist: sp.Deterministic(),
	}
}

// SpecListResponse is the body of GET /v1/specs and POST /v1/specs.
type SpecListResponse struct {
	Specs []SpecInfo `json:"specs"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/derive", s.handleDerive)
	s.mux.HandleFunc("POST /v1/specs", s.handleSpecUpload)
	s.mux.HandleFunc("GET /v1/specs", s.handleSpecList)
	s.mux.HandleFunc("GET /v1/specs/{name}", s.handleSpecGet)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// errStatus maps a wire error code to its HTTP status.
func errStatus(code string) int {
	switch code {
	case ErrCodeBadRequest:
		return http.StatusBadRequest
	case ErrCodeNotFound:
		return http.StatusNotFound
	case ErrCodeTimeout:
		return http.StatusGatewayTimeout
	case ErrCodeOverloaded, ErrCodeCanceled:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleDerive is POST /v1/derive: resolve → cache → singleflight → engine.
// Definitive answers — a converter, or a nonexistence proof — are HTTP 200
// with the envelope saying which; non-200 means the derivation itself did
// not complete (bad input, overload, timeout, shutdown).
func (s *Server) handleDerive(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := fmt.Sprintf("r%06d", s.reqSeq.Add(1))
	s.met.deriveRequests.Add(1)

	var req DeriveRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failRequest(w, id, start, &WireError{Code: ErrCodeBadRequest,
			Message: "body: " + err.Error()})
		return
	}
	cr, werr := s.compile(&req)
	if werr != nil {
		s.failRequest(w, id, start, werr)
		return
	}

	if e, ok := s.cache.Get(cr.key); ok {
		s.respondEntry(w, r, id, start, cr, &req.Options, e, true, false)
		return
	}

	fr, joined, err := s.flights.do(r.Context(), cr.key, func() flightResult {
		// The queue wait draws down the same per-request budget the engine
		// runs under; the derivation itself re-derives its deadline from
		// baseCtx inside executeDerivation.
		actx, cancel := context.WithTimeout(s.baseCtx, cr.timeout)
		defer cancel()
		if err := s.pool.acquire(actx); err != nil {
			if errors.Is(err, errOverloaded) {
				s.met.rejected.Add(1)
				return flightResult{err: &WireError{Code: ErrCodeOverloaded,
					Message: "derivation queue full; retry later"}}
			}
			s.met.timeouts.Add(1)
			return flightResult{err: &WireError{Code: ErrCodeTimeout,
				Message: "timed out waiting for a derivation slot"}}
		}
		defer s.pool.release()
		s.met.derives.Add(1)
		if s.preDerive != nil {
			s.preDerive(cr.key)
		}
		fr := s.executeDerivation(cr)
		if fr.entry != nil {
			s.cache.Put(fr.entry)
		}
		return fr
	})
	if err != nil {
		// This request gave up waiting on someone else's flight; the flight
		// itself keeps running into the cache.
		s.failRequest(w, id, start, &WireError{Code: ErrCodeCanceled,
			Message: "request canceled while waiting for an identical in-flight derivation"})
		return
	}
	if joined {
		s.met.coalesced.Add(1)
	}
	if fr.err != nil {
		var we *WireError
		if !errors.As(fr.err, &we) {
			we = &WireError{Code: ErrCodeInternal, Message: fr.err.Error()}
		}
		if we.Code == ErrCodeInternal {
			s.met.deriveErrors.Add(1)
		}
		s.failRequest(w, id, start, we)
		return
	}
	s.respondEntry(w, r, id, start, cr, &req.Options, fr.entry, false, joined)
}

// respondEntry renders one cacheable outcome into the response envelope,
// attaching per-request fields and any requested artifact renderings.
func (s *Server) respondEntry(w http.ResponseWriter, r *http.Request, id string,
	start time.Time, cr *compiledRequest, opts *DeriveOptions, e *cacheEntry,
	cached, coalesced bool) {

	resp := &DeriveResponse{
		RequestID: id,
		Key:       e.Key,
		Cached:    cached,
		Coalesced: coalesced,
		Exists:    e.Exists,
		Converter: e.Converter,
		Stats:     e.Stats,
		Error:     e.Error,
	}
	if e.Exists && e.Converter != "" && (opts.IncludeDOT || opts.IncludeGo) {
		if conv, err := dsl.ParseString(e.Converter); err == nil {
			if opts.IncludeDOT {
				resp.DOT = render.DOTString(conv, render.DOTOptions{})
			}
			if opts.IncludeGo {
				pkg := opts.GoPackage
				if pkg == "" {
					pkg = "converter"
				}
				src, err := codegen.Generate(conv, codegen.Config{Package: pkg})
				if err != nil {
					resp.GoSource = "// codegen: " + err.Error() + "\n"
				} else {
					resp.GoSource = string(src)
				}
			}
		}
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = durMS(elapsed)
	if cached {
		s.met.warm.observe(elapsed)
	} else {
		s.met.cold.observe(elapsed)
	}
	s.logf("quotd: %s POST /v1/derive 200 key=%s exists=%t cached=%t coalesced=%t %.2fms",
		id, shortKey(e.Key), e.Exists, cached, coalesced, resp.ElapsedMS)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) failRequest(w http.ResponseWriter, id string, start time.Time, we *WireError) {
	status := errStatus(we.Code)
	if we.Code == ErrCodeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	s.logf("quotd: %s POST /v1/derive %d code=%s %.2fms: %s",
		id, status, we.Code, durMS(time.Since(start)), we.Message)
	writeJSON(w, status, &DeriveResponse{RequestID: id, Error: we,
		ElapsedMS: durMS(time.Since(start))})
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

func (s *Server) handleSpecUpload(w http.ResponseWriter, r *http.Request) {
	var req SpecUploadRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &WireError{Code: ErrCodeBadRequest,
			Message: "body: " + err.Error()})
		return
	}
	specs, err := dsl.Parse(strings.NewReader(req.Text))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, &WireError{Code: ErrCodeBadRequest,
			Message: err.Error()})
		return
	}
	resp := SpecListResponse{}
	for _, sp := range specs {
		s.RegisterSpec(sp)
		resp.Specs = append(resp.Specs, specInfo(sp))
	}
	s.logf("quotd: POST /v1/specs registered %d spec(s)", len(resp.Specs))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSpecList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SpecListResponse{Specs: s.listSpecs()})
}

func (s *Server) handleSpecGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sp, ok := s.lookupSpec(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, &WireError{Code: ErrCodeNotFound,
			Message: fmt.Sprintf("no uploaded spec named %q", name)})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = dsl.Write(w, sp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the load-balancer probe: 503 once draining starts, so
// traffic falls off before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}
