package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"time"

	"protoquot/internal/api"
	"protoquot/internal/codegen"
	"protoquot/internal/convrt"
	"protoquot/internal/dsl"
	"protoquot/internal/render"
	"protoquot/internal/spec"
)

func specInfo(sp *spec.Spec) api.SpecInfo {
	return api.SpecInfo{
		Name:        sp.Name(),
		Hash:        sp.Hash(),
		States:      sp.NumStates(),
		ExtEdges:    sp.NumExternalTransitions(),
		IntEdges:    sp.NumInternalTransitions(),
		NormalForm:  sp.IsNormalForm() == nil,
		Alphabet:    len(sp.Alphabet()),
		Determinist: sp.Deterministic(),
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/derive", s.handleDerive)
	s.mux.HandleFunc("POST /v1/specs", s.handleSpecUpload)
	s.mux.HandleFunc("GET /v1/specs", s.handleSpecList)
	s.mux.HandleFunc("GET /v1/specs/{name}", s.handleSpecGet)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/peer/artifact", s.handlePeerFill)
	s.mux.HandleFunc("GET /v1/peer/artifact/{key}", s.handlePeerArtifact)
	s.mux.HandleFunc("GET /v1/peer/keys", s.handlePeerKeys)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.VersionHeader, api.Version)
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// handleDerive is POST /v1/derive: resolve → cache → shard route → cache or
// singleflight → engine. Definitive answers — a converter, or a nonexistence
// proof — are HTTP 200 with the envelope saying which; non-200 means the
// derivation itself did not complete (bad input, overload, timeout,
// shutdown). In cluster mode a local miss for a key another shard owns is
// filled from that owner; an unreachable owner falls back to the local
// engine, so shard loss is never a client-visible failure.
func (s *Server) handleDerive(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := fmt.Sprintf("r%06d", s.reqSeq.Add(1))
	s.met.deriveRequests.Add(1)

	var req api.DeriveRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failRequest(w, id, start, &api.Error{Code: api.ErrCodeBadRequest,
			Message: "body: " + err.Error()})
		return
	}
	cr, werr := s.compile(&req)
	if werr != nil {
		s.failRequest(w, id, start, werr)
		return
	}

	if e, ok := s.cache.Get(cr.key); ok {
		s.respondEntry(w, id, start, &req.Options, e, true, false, "")
		return
	}

	if fill, shard := s.tryPeerFill(r.Context(), cr, &req); fill != nil {
		s.respondEntry(w, id, start, &req.Options, fill.Artifact, fill.Cached, false, shard)
		return
	}

	e, coalesced, werr := s.deriveFlight(r.Context(), cr)
	if werr != nil {
		s.failRequest(w, id, start, werr)
		return
	}
	s.respondEntry(w, id, start, &req.Options, e, false, coalesced, "")
}

// respondEntry renders one cacheable outcome into the response envelope,
// attaching per-request fields and any requested artifact renderings.
func (s *Server) respondEntry(w http.ResponseWriter, id string,
	start time.Time, opts *api.DeriveOptions, e *api.Artifact,
	cached, coalesced bool, shard string) {

	resp := &api.DeriveResponse{
		RequestID: id,
		Key:       e.Key,
		Cached:    cached,
		Coalesced: coalesced,
		Shard:     shard,
		Exists:    e.Exists,
		Converter: e.Converter,
		Stats:     e.Stats,
		Error:     e.Error,
	}
	if opts.IncludeTable && e.Exists {
		// The compiled table is stored on the artifact; entries written by
		// older daemons lack it, so fall through to compiling on demand.
		resp.Table = e.Table
	}
	if e.Exists && e.Converter != "" &&
		(opts.IncludeDOT || opts.IncludeGo || (opts.IncludeTable && resp.Table == "")) {
		if conv, err := dsl.ParseString(e.Converter); err == nil {
			if opts.IncludeDOT {
				resp.DOT = render.DOTString(conv, render.DOTOptions{})
			}
			if opts.IncludeGo {
				pkg := opts.GoPackage
				if pkg == "" {
					pkg = "converter"
				}
				src, err := codegen.Generate(conv, codegen.Config{Package: pkg})
				if err != nil {
					resp.GoSource = "// codegen: " + err.Error() + "\n"
				} else {
					resp.GoSource = string(src)
				}
			}
			if opts.IncludeTable && resp.Table == "" {
				if table, err := convrt.CompileEncoded(conv); err == nil {
					resp.Table = string(table)
				}
			}
		}
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = api.DurMS(elapsed)
	if cached {
		s.met.warm.observe(elapsed)
	} else {
		s.met.cold.observe(elapsed)
	}
	s.logf("quotd: %s POST /v1/derive 200 key=%s exists=%t cached=%t coalesced=%t shard=%s %.2fms",
		id, shortKey(e.Key), e.Exists, cached, coalesced, shard, resp.ElapsedMS)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) failRequest(w http.ResponseWriter, id string, start time.Time, we *api.Error) {
	status := api.HTTPStatus(we.Code)
	if we.Code == api.ErrCodeQueueFull {
		w.Header().Set("Retry-After", "1")
	}
	s.logf("quotd: %s POST /v1/derive %d code=%s %.2fms: %s",
		id, status, we.Code, api.DurMS(time.Since(start)), we.Message)
	writeJSON(w, status, &api.DeriveResponse{RequestID: id, Error: we,
		ElapsedMS: api.DurMS(time.Since(start))})
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

func (s *Server) handleSpecUpload(w http.ResponseWriter, r *http.Request) {
	var req api.SpecUploadRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &api.Error{Code: api.ErrCodeBadRequest,
			Message: "body: " + err.Error()})
		return
	}
	specs, err := dsl.Parse(strings.NewReader(req.Text))
	if err != nil {
		werr := api.SpecError("upload", err)
		writeJSON(w, api.HTTPStatus(werr.Code), werr)
		return
	}
	resp := api.SpecListResponse{}
	for _, sp := range specs {
		s.RegisterSpec(sp)
		resp.Specs = append(resp.Specs, specInfo(sp))
	}
	s.logf("quotd: POST /v1/specs registered %d spec(s)", len(resp.Specs))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSpecList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.SpecListResponse{Specs: s.listSpecs()})
}

func (s *Server) handleSpecGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sp, ok := s.lookupSpec(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, &api.Error{Code: api.ErrCodeNotFound,
			Message: fmt.Sprintf("no uploaded spec named %q", name)})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = dsl.Write(w, sp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the load-balancer probe: 503 once draining starts, so
// traffic falls off before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}
