package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"protoquot/internal/api"
	"protoquot/internal/core"
	"protoquot/internal/dsl"
	"protoquot/internal/specgen"
)

const serviceText = `
spec S
init v0
ext v0 acc v1
ext v1 del v0
`

const worldText = `
spec B
init b0
ext b0 acc b1
ext b1 fwd b2
ext b2 del b0
`

// doomedWorld can emit del immediately, which the service forbids before
// acc: no converter exists (safety phase, with witness del).
const doomedWorld = `
spec D
init b0
ext b0 del b1
ext b1 fwd b0
ext b0 acc b0
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Abort)
	return s, ts
}

func postDerive(t *testing.T, url string, req api.DeriveRequest) (*api.DeriveResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/derive", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.DeriveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &out, resp.StatusCode
}

func getStats(t *testing.T, url string) api.StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func simpleRequest() api.DeriveRequest {
	return api.DeriveRequest{
		Service: api.SpecSource{Inline: serviceText},
		Envs:    []api.SpecSource{{Inline: worldText}},
	}
}

func TestDeriveEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	out, code := postDerive(t, ts.URL, simpleRequest())
	if code != http.StatusOK {
		t.Fatalf("status %d, error: %+v", code, out.Error)
	}
	if !out.Exists || out.Converter == "" {
		t.Fatalf("expected a converter, got %+v", out)
	}
	if out.Cached || out.Coalesced {
		t.Errorf("first request cannot be cached or coalesced: %+v", out)
	}
	if len(out.Key) != 64 {
		t.Errorf("key should be a hex sha256, got %q", out.Key)
	}
	if out.Stats == nil || out.Stats.FinalStates == 0 {
		t.Errorf("stats missing: %+v", out.Stats)
	}
	// The wire converter must verify against the inputs end to end.
	c, err := dsl.ParseString(out.Converter)
	if err != nil {
		t.Fatalf("converter does not parse: %v", err)
	}
	a, _ := dsl.ParseString(serviceText)
	b, _ := dsl.ParseString(worldText)
	if err := core.Verify(a, b, c); err != nil {
		t.Errorf("B‖C does not satisfy A: %v", err)
	}
}

func TestRepeatRequestServedFromCacheBitIdentically(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	first, code := postDerive(t, ts.URL, simpleRequest())
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	second, code := postDerive(t, ts.URL, simpleRequest())
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Cached {
		t.Error("first request claims cached")
	}
	if !second.Cached {
		t.Error("repeat request not served from cache")
	}
	// Bit-identical modulo per-request fields: normalize those, then the
	// envelopes must match byte for byte.
	norm := func(r api.DeriveResponse) string {
		r.RequestID, r.Cached, r.Coalesced, r.ElapsedMS = "", false, false, 0
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := norm(*first), norm(*second); a != b {
		t.Errorf("cached response differs from the original:\n first: %s\nsecond: %s", a, b)
	}
	st := getStats(t, ts.URL)
	if st.Derives != 1 {
		t.Errorf("engine ran %d times for two identical requests, want 1", st.Derives)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

func TestConcurrentIdenticalRequestsSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 4})
	// Hold the flight leader inside the engine until both requests are in
	// the system, so the second request must join the first's flight.
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.preDerive = func(key string) {
		once.Do(func() { close(entered) })
		<-release
	}
	type result struct {
		out  *api.DeriveResponse
		code int
	}
	results := make(chan result, 2)
	post := func() {
		out, code := postDerive(t, ts.URL, simpleRequest())
		results <- result{out, code}
	}
	go post()
	<-entered // leader is inside the engine
	go post()
	// The follower has no engine hook to rendezvous on; give it a moment to
	// reach the flight, then let the leader finish.
	for i := 0; i < 200; i++ {
		st := getStats(t, ts.URL)
		if st.DeriveRequests >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)

	var coalesced int
	var converters []string
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("status %d: %+v", r.code, r.out.Error)
		}
		if r.out.Coalesced {
			coalesced++
		}
		converters = append(converters, r.out.Converter)
	}
	if converters[0] != converters[1] {
		t.Error("coalesced requests returned different converters")
	}
	st := getStats(t, ts.URL)
	if st.Derives != 1 {
		t.Errorf("two identical concurrent requests ran the engine %d times, want 1 (singleflight)", st.Derives)
	}
	if st.Coalesced != 1 || coalesced != 1 {
		t.Errorf("expected exactly one coalesced request, stats=%d envelope=%d", st.Coalesced, coalesced)
	}
}

func TestNoConverterIsDefinitiveAndCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.DeriveRequest{
		Service: api.SpecSource{Inline: serviceText},
		Envs:    []api.SpecSource{{Inline: doomedWorld}},
	}
	out, code := postDerive(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("nonexistence should be a definitive 200, got %d", code)
	}
	if out.Exists {
		t.Fatal("converter should not exist")
	}
	if out.Error == nil || out.Error.Code != api.ErrCodeNoQuotient {
		t.Fatalf("want no_quotient error, got %+v", out.Error)
	}
	if out.Error.Phase != "safety" || len(out.Error.Witness) == 0 {
		t.Errorf("want safety-phase proof with witness, got %+v", out.Error)
	}
	again, _ := postDerive(t, ts.URL, req)
	if !again.Cached {
		t.Error("nonexistence proof should be cached")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  api.DeriveRequest
		code int
		werr string
	}{
		{"no sources", api.DeriveRequest{Service: api.SpecSource{Inline: serviceText}}, 400, api.ErrCodeBadRequest},
		{"both kinds", api.DeriveRequest{Service: api.SpecSource{Inline: serviceText},
			Envs:       []api.SpecSource{{Inline: worldText}},
			Components: []api.SpecSource{{Inline: worldText}}}, 400, api.ErrCodeBadRequest},
		{"bad dsl", api.DeriveRequest{Service: api.SpecSource{Inline: "spec"},
			Envs: []api.SpecSource{{Inline: worldText}}}, 400, api.ErrCodeBadSpec},
		{"unknown ref", api.DeriveRequest{Service: api.SpecSource{Ref: "nope"},
			Envs: []api.SpecSource{{Inline: worldText}}}, 404, api.ErrCodeNotFound},
		{"bad engine", api.DeriveRequest{Service: api.SpecSource{Inline: serviceText},
			Components: []api.SpecSource{{Inline: worldText}},
			Options:    api.DeriveOptions{Engine: "warp"}}, 400, api.ErrCodeBadRequest},
	}
	for _, tc := range cases {
		out, code := postDerive(t, ts.URL, tc.req)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.code)
		}
		if out.Error == nil || out.Error.Code != tc.werr {
			t.Errorf("%s: error %+v, want code %s", tc.name, out.Error, tc.werr)
		}
	}
}

func TestSpecUploadAndDeriveByRef(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(api.SpecUploadRequest{Text: serviceText + worldText})
	resp, err := http.Post(ts.URL+"/v1/specs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var up api.SpecListResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(up.Specs) != 2 {
		t.Fatalf("uploaded 2 specs, registered %d", len(up.Specs))
	}
	for _, info := range up.Specs {
		if len(info.Hash) != 64 {
			t.Errorf("spec %s: bad hash %q", info.Name, info.Hash)
		}
	}

	out, code := postDerive(t, ts.URL, api.DeriveRequest{
		Service: api.SpecSource{Ref: "S"},
		Envs:    []api.SpecSource{{Ref: "B"}},
	})
	if code != http.StatusOK || !out.Exists {
		t.Fatalf("derive by ref failed: %d %+v", code, out.Error)
	}

	// By-ref and inline requests with the same content share a cache key.
	inline, _ := postDerive(t, ts.URL, simpleRequest())
	if inline.Key != out.Key {
		t.Errorf("inline and by-ref keys differ: %s vs %s", inline.Key, out.Key)
	}
	if !inline.Cached {
		t.Error("inline request after identical by-ref derivation should hit the cache")
	}

	// GET endpoints round-trip.
	got, err := http.Get(ts.URL + "/v1/specs/S")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := readAll(got)
	if !strings.Contains(text, "spec S") {
		t.Errorf("GET /v1/specs/S returned %q", text)
	}
	missing, err := http.Get(ts.URL + "/v1/specs/zzz")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("GET of unknown spec: %d, want 404", missing.StatusCode)
	}
}

func TestComponentsLazyAndIndexedShareCacheKey(t *testing.T) {
	// The engine result is bit-identical across pipelines, so engine choice
	// is excluded from the key: an indexed derivation warms the cache for a
	// lazy one.
	_, ts := newTestServer(t, Config{})
	f := specgen.Chain(2)
	comps := make([]api.SpecSource, len(f.Components))
	for i, c := range f.Components {
		comps[i] = api.SpecSource{Inline: dsl.String(c)}
	}
	req := api.DeriveRequest{
		Service:    api.SpecSource{Inline: dsl.String(f.Service)},
		Components: comps,
		Options:    api.DeriveOptions{Engine: "indexed"},
	}
	first, code := postDerive(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, first.Error)
	}
	req.Options.Engine = "lazy"
	second, code := postDerive(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !second.Cached {
		t.Error("lazy request should be served from the indexed derivation's cache entry")
	}
	if first.Key != second.Key {
		t.Errorf("keys differ across engines: %s vs %s", first.Key, second.Key)
	}
	// Workers likewise must not fragment the cache.
	req.Options.Workers = 4
	third, _ := postDerive(t, ts.URL, req)
	if !third.Cached {
		t.Error("worker count fragments the cache key")
	}
}

func TestOverloadShedsWith503(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 1, MaxQueue: -1})
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.preDerive = func(string) {
		once.Do(func() { close(entered) })
		<-release
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		out, code := postDerive(t, ts.URL, simpleRequest())
		if code != http.StatusOK {
			t.Errorf("occupying request failed: %d %+v", code, out.Error)
		}
	}()
	<-entered
	// Different key (different option in the keyed set) so it cannot join
	// the first request's flight: it must be shed at the pool.
	req := simpleRequest()
	req.Options.OmitVacuous = true
	out, code := postDerive(t, ts.URL, req)
	if code != http.StatusServiceUnavailable {
		t.Errorf("expected 503 under overload, got %d (%+v)", code, out.Error)
	}
	if out.Error == nil || out.Error.Code != api.ErrCodeQueueFull {
		t.Errorf("want queue_full error, got %+v", out.Error)
	}
	close(release)
	<-done
	if st := getStats(t, ts.URL); st.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", st.Rejected)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("healthz = %d", got)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("readyz before drain = %d", got)
	}
	s.StartDrain()
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (liveness != readiness)", got)
	}
	if !getStats(t, ts.URL).Draining {
		t.Error("stats should report draining")
	}
}

func TestDeriveTimeout(t *testing.T) {
	// A deadline far below the derivation cost must produce 504 and count a
	// timeout; nothing may be cached for the key.
	_, ts := newTestServer(t, Config{DefaultTimeout: 1 * time.Nanosecond})
	out, code := postDerive(t, ts.URL, simpleRequest())
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%+v)", code, out.Error)
	}
	if out.Error == nil || out.Error.Code != api.ErrCodeDeadline {
		t.Fatalf("want deadline error, got %+v", out.Error)
	}
	st := getStats(t, ts.URL)
	if st.Timeouts == 0 {
		t.Error("timeout not counted")
	}
	if st.CacheEntries != 0 {
		t.Error("timed-out derivation must not populate the cache")
	}
}

func TestArtifactRenderings(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := simpleRequest()
	req.Options.IncludeDOT = true
	req.Options.IncludeGo = true
	req.Options.Minimize = true // deterministic converter → codegen succeeds
	req.Options.Prune = true
	out, code := postDerive(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, out.Error)
	}
	if !strings.Contains(out.DOT, "digraph") {
		t.Errorf("DOT rendering missing: %q", out.DOT)
	}
	if !strings.Contains(out.GoSource, "package converter") {
		t.Errorf("Go rendering missing: %q", out.GoSource)
	}
	// Renderings are derived on demand: the cache entry stores only the
	// converter, and a repeat without renderings omits them.
	plain := simpleRequest()
	plain.Options.Minimize = true
	plain.Options.Prune = true
	out2, _ := postDerive(t, ts.URL, plain)
	if !out2.Cached {
		t.Error("rendering options must not fragment the cache key")
	}
	if out2.DOT != "" || out2.GoSource != "" {
		t.Error("renderings returned without being requested")
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if err.Error() == "EOF" {
				return sb.String(), nil
			}
			return sb.String(), err
		}
	}
}

func TestStatsLatencyQuantiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		if _, code := postDerive(t, ts.URL, simpleRequest()); code != 200 {
			t.Fatalf("request %d failed", i)
		}
	}
	st := getStats(t, ts.URL)
	if st.ColdP50MS <= 0 {
		t.Errorf("cold p50 not populated: %+v", st)
	}
	if st.WarmP50MS <= 0 {
		t.Errorf("warm p50 not populated: %+v", st)
	}
	if st.WarmP99MS < st.WarmP50MS || st.ColdP99MS < st.ColdP50MS {
		t.Errorf("p99 below p50: %+v", st)
	}
	if st.UptimeMS <= 0 || st.PoolWorkers < 1 {
		t.Errorf("config gauges missing: %+v", st)
	}
}

func TestRobustVariantOrderIsKeyed(t *testing.T) {
	// Conservative keying: variant order participates in the address, so
	// reordering variants is a miss, never a wrong hit.
	_, ts := newTestServer(t, Config{})
	lossy := `
spec L
init b0
ext b0 acc b1
ext b1 fwd b2
ext b2 del b0
int b1 b0
`
	r1 := api.DeriveRequest{Service: api.SpecSource{Inline: serviceText},
		Envs: []api.SpecSource{{Inline: worldText}, {Inline: lossy}}}
	r2 := api.DeriveRequest{Service: api.SpecSource{Inline: serviceText},
		Envs: []api.SpecSource{{Inline: lossy}, {Inline: worldText}}}
	a, code := postDerive(t, ts.URL, r1)
	if code != http.StatusOK {
		t.Fatalf("robust derive failed: %+v", a.Error)
	}
	b, _ := postDerive(t, ts.URL, r2)
	if a.Key == b.Key {
		t.Error("variant order should change the key (conservative)")
	}
}

func TestExpvarPublish(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.PublishExpvar()
	s.PublishExpvar() // idempotent; must not panic
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	text, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "quotd") {
		t.Skip("another test won the process-wide expvar name first")
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(text), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["quotd"]; !ok {
		t.Error("quotd var missing from /debug/vars")
	}
}

func TestServerSideMaxStatesCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxStatesCap: 1})
	out, code := postDerive(t, ts.URL, simpleRequest())
	if code != http.StatusBadRequest {
		t.Fatalf("capped derivation: status %d (%+v)", code, out.Error)
	}
	if out.Error == nil || !strings.Contains(out.Error.Message, "MaxStates") {
		t.Errorf("error should mention the state cap: %+v", out.Error)
	}
	// And the asked-for bound is clamped, producing the same key as asking
	// for nothing (both resolve to the cap).
	req := simpleRequest()
	req.Options.MaxStates = 100
	out2, _ := postDerive(t, ts.URL, req)
	if out.Key != out2.Key {
		t.Errorf("clamped keys differ: %s vs %s", out.Key, out2.Key)
	}
}
