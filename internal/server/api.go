// Package server implements quotd, the long-running derivation service: an
// HTTP/JSON daemon that accepts specification uploads and derivation
// requests, runs derivations on a bounded worker pool with per-request
// deadlines and cancellation, deduplicates identical in-flight requests
// (singleflight), and serves repeat requests from a content-addressed
// converter cache keyed by the canonical hash of the inputs.
//
// The quotient is a pure function of its (A, B) inputs — the Calvert & Lam
// construction is deterministic and complete — so a derivation result may
// be cached under a key derived from the canonical serialization of every
// input specification plus the semantic options (DESIGN.md argues the
// soundness of this in detail). Repeat and concurrent requests then cost
// O(lookup) instead of O(derive).
//
// This file defines the wire types. They are shared with `quotient -json`,
// so the CLI and the daemon emit the same machine-readable envelope and
// can never drift.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"protoquot/internal/core"
	"protoquot/internal/spec"
)

// SpecSource names one input specification: either inline .spec DSL text or
// a reference to a spec previously uploaded via POST /v1/specs. Exactly one
// field must be set.
type SpecSource struct {
	// Inline is .spec DSL text containing exactly one specification.
	Inline string `json:"inline,omitempty"`
	// Ref is the name of an uploaded specification.
	Ref string `json:"ref,omitempty"`
}

// DeriveOptions are the per-request knobs of POST /v1/derive.
//
// Only the semantic options — those that change the derived artifact —
// participate in the cache key: OmitVacuous, SafetyOnly, MaxStates,
// MinimizeEnv, Normalize, Prune, Minimize. Workers and Engine are excluded
// because the engine's outcome is bit-identical for every worker count and
// for the lazy/indexed/eager pipelines alike (the golden differential
// suites pin this); TimeoutMS and the artifact selectors (IncludeDOT,
// IncludeGo, GoPackage) are excluded because they do not change the
// converter, only how much of it is rendered into the response.
type DeriveOptions struct {
	// Workers is the engine worker count for the safety phase; 0 means the
	// server default. The result is bit-identical for every value.
	Workers int `json:"workers,omitempty"`
	// Engine selects the composition pipeline when Components are given:
	// "lazy" (default, demand-driven) or "indexed" (eager index-space).
	Engine string `json:"engine,omitempty"`
	// Normalize determinizes the service first if it is not in normal form;
	// without it a non-normal service is a bad request.
	Normalize bool `json:"normalize,omitempty"`
	// MinimizeEnv pre-reduces each environment component by strong
	// bisimulation before deriving (core.Options.MinimizeComponents).
	MinimizeEnv bool `json:"minimize_env,omitempty"`
	// OmitVacuous, SafetyOnly, MaxStates mirror core.Options.
	OmitVacuous bool `json:"omit_vacuous,omitempty"`
	SafetyOnly  bool `json:"safety_only,omitempty"`
	MaxStates   int  `json:"max_states,omitempty"`
	// Prune greedily removes useless converter behavior; Minimize
	// bisimulation-minimizes the converter before it is returned.
	Prune    bool `json:"prune,omitempty"`
	Minimize bool `json:"minimize,omitempty"`
	// TimeoutMS bounds this request's derivation; 0 means the server
	// default. Values above the server maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// IncludeDOT / IncludeGo additionally render the converter as Graphviz
	// and as standalone Go source (package GoPackage, default "converter").
	// Both are deterministic functions of the converter, computed on demand
	// — cache entries store only the converter itself.
	IncludeDOT bool   `json:"include_dot,omitempty"`
	IncludeGo  bool   `json:"include_go,omitempty"`
	GoPackage  string `json:"go_package,omitempty"`
}

// DeriveRequest is the body of POST /v1/derive. Exactly one of Envs or
// Components must be non-empty: Envs lists environment variants for robust
// derivation (each variant a complete environment; one variant is the plain
// quotient), Components lists machines to be composed into a single
// environment by the server (lazy by default — the fused demand-driven
// pipeline).
type DeriveRequest struct {
	Service    SpecSource    `json:"service"`
	Envs       []SpecSource  `json:"envs,omitempty"`
	Components []SpecSource  `json:"components,omitempty"`
	Options    DeriveOptions `json:"options"`
}

// WireStats is core.Stats flattened for the wire. Wall times are reported
// in milliseconds; on a cache hit they describe the original derivation,
// not the lookup (the envelope's ElapsedMS describes the request).
type WireStats struct {
	SafetyStates       int     `json:"safety_states"`
	SafetyTransitions  int     `json:"safety_transitions"`
	PairSetTotal       int     `json:"pair_set_total"`
	ProgressIterations int     `json:"progress_iterations"`
	RemovedStates      int     `json:"removed_states"`
	FinalStates        int     `json:"final_states"`
	FinalTransitions   int     `json:"final_transitions"`
	Workers            int     `json:"workers"`
	SafetyWallMS       float64 `json:"safety_wall_ms"`
	ProgressWallMS     float64 `json:"progress_wall_ms"`
	SafetyLevels       int     `json:"safety_levels"`
	PeakFrontier       int     `json:"peak_frontier"`
	InternLookups      int     `json:"intern_lookups"`
	InternHits         int     `json:"intern_hits"`
	ProgressScans      int     `json:"progress_scans"`
	TauCacheHits       int     `json:"tau_cache_hits"`
	TauInvalidated     int     `json:"tau_invalidated"`
	ReadySetRebuilds   int     `json:"ready_set_rebuilds"`
	EnvStatesExpanded  int     `json:"env_states_expanded"`
	EnvStatesTotal     int     `json:"env_states_total"`
	EnvExpansionMS     float64 `json:"env_expansion_ms,omitempty"`
}

// StatsFromCore flattens engine statistics into the wire form.
func StatsFromCore(s core.Stats) *WireStats {
	m := s.Metrics
	return &WireStats{
		SafetyStates:       s.SafetyStates,
		SafetyTransitions:  s.SafetyTransitions,
		PairSetTotal:       s.PairSetTotal,
		ProgressIterations: s.ProgressIterations,
		RemovedStates:      s.RemovedStates,
		FinalStates:        s.FinalStates,
		FinalTransitions:   s.FinalTransitions,
		Workers:            m.Workers,
		SafetyWallMS:       durMS(m.SafetyWall),
		ProgressWallMS:     durMS(m.ProgressWall),
		SafetyLevels:       m.SafetyLevels,
		PeakFrontier:       m.PeakFrontier,
		InternLookups:      m.InternLookups,
		InternHits:         m.InternHits,
		ProgressScans:      m.ProgressScans,
		TauCacheHits:       m.TauCacheHits,
		TauInvalidated:     m.TauInvalidated,
		ReadySetRebuilds:   m.ReadySetRebuilds,
		EnvStatesExpanded:  m.EnvStatesExpanded,
		EnvStatesTotal:     m.EnvStatesTotal,
		EnvExpansionMS:     float64(m.EnvExpansionNs) / 1e6,
	}
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Error codes carried in WireError.Code.
const (
	ErrCodeBadRequest  = "bad_request"  // malformed body, bad DSL, bad options
	ErrCodeNotFound    = "not_found"    // unknown spec reference or route
	ErrCodeNoConverter = "no_converter" // derivation proved nonexistence
	ErrCodeTimeout     = "timeout"      // per-request deadline exceeded
	ErrCodeCanceled    = "canceled"     // client went away or server shut down
	ErrCodeOverloaded  = "overloaded"   // queue full; retry later
	ErrCodeInternal    = "internal"
)

// WireError is the machine-readable error envelope. Nonexistence
// (no_converter) is a definitive answer, not a failure: it is cached and
// carries the phase that proved it and, when available, a witness trace.
type WireError struct {
	Code    string   `json:"code"`
	Message string   `json:"message"`
	Phase   string   `json:"phase,omitempty"`
	Witness []string `json:"witness,omitempty"`
}

func (e *WireError) Error() string { return e.Code + ": " + e.Message }

// DeriveResponse is the result envelope of POST /v1/derive — and of
// `quotient -json`, which emits the identical shape with the per-request
// service fields (RequestID, Cached, Coalesced) left zero.
type DeriveResponse struct {
	// RequestID identifies this request in the server log.
	RequestID string `json:"request_id,omitempty"`
	// Key is the content address of the derivation: the cache key computed
	// from the canonical input hashes and the semantic options.
	Key string `json:"key"`
	// Cached reports that the result was served from the converter cache;
	// Coalesced that this request shared a single in-flight derivation
	// with concurrent identical requests (singleflight).
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Exists reports whether a converter exists. When false, Error.Code is
	// no_converter with the proof phase.
	Exists bool `json:"exists"`
	// Converter is the derived converter in .spec DSL text.
	Converter string `json:"converter,omitempty"`
	// DOT / GoSource are optional renderings (Options.IncludeDOT/IncludeGo).
	DOT      string `json:"dot,omitempty"`
	GoSource string `json:"go_source,omitempty"`
	// Stats describes the derivation that produced the artifact.
	Stats *WireStats `json:"stats,omitempty"`
	// Error is set on any non-success, including definitive nonexistence.
	Error *WireError `json:"error,omitempty"`
	// ElapsedMS is this request's wall time (lookup time on a cache hit).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// keyedOptions returns the canonical encoding of the semantic options — the
// option slice of the cache key. Workers, Engine, TimeoutMS, and the
// artifact selectors are deliberately absent; see DeriveOptions.
func (o DeriveOptions) keyedOptions() string {
	return fmt.Sprintf("omitvac=%t safety=%t maxstates=%d minenv=%t prune=%t minimize=%t",
		o.OmitVacuous, o.SafetyOnly, o.MaxStates, o.MinimizeEnv, o.Prune, o.Minimize)
}

// CacheKey computes the content address of a derivation: the hex SHA-256
// over a version tag, the semantic options, and the canonical serialization
// of the service and of every environment variant or component, each
// prefixed by its role. The service must already be in normal form (the
// caller normalizes first, so normalize-vs-prenormalized requests that
// reach the same effective inputs share an address).
func CacheKey(a *spec.Spec, envs, components []*spec.Spec, opts DeriveOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "protoquot-derive-v1\n")
	fmt.Fprintf(h, "opts %s\n", opts.keyedOptions())
	fmt.Fprintf(h, "service %d\n", len(a.Canonical()))
	h.Write(a.Canonical())
	for _, b := range envs {
		c := b.Canonical()
		fmt.Fprintf(h, "env %d\n", len(c))
		h.Write(c)
	}
	for _, b := range components {
		c := b.Canonical()
		fmt.Fprintf(h, "component %d\n", len(c))
		h.Write(c)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ResultEnvelope builds the shared success/nonexistence envelope from a
// derivation outcome. conv is the final converter after any post-processing
// (prune, minimize); it may differ from res.Converter. derr, when non-nil,
// must be the derivation error; a *core.NoQuotientError becomes a
// definitive no_converter envelope, anything else an internal error.
// Renderings (DOT, Go source) are the caller's concern.
func ResultEnvelope(key string, res *core.Result, conv *spec.Spec, derr error) *DeriveResponse {
	env := &DeriveResponse{Key: key}
	if res != nil {
		env.Stats = StatsFromCore(res.Stats)
	}
	if derr != nil {
		var nq *core.NoQuotientError
		if errors.As(derr, &nq) {
			we := &WireError{Code: ErrCodeNoConverter, Message: nq.Error(), Phase: nq.Phase()}
			for _, e := range nq.Witness() {
				we.Witness = append(we.Witness, string(e))
			}
			env.Error = we
		} else {
			env.Error = &WireError{Code: ErrCodeInternal, Message: derr.Error()}
		}
		return env
	}
	env.Exists = true
	if conv != nil {
		env.Converter = specText(conv)
	}
	return env
}
