package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"protoquot/internal/api"
	"protoquot/internal/cluster"
)

// clusterState is everything a node needs to act as one shard of a quotd
// cluster: the health-probed ring, a peer-directed API client, and the
// hot-key tracker that decides when a foreign-owned artifact is requested
// often enough locally to replicate.
type clusterState struct {
	mem    *cluster.Membership
	client *api.Client
	hot    *cluster.HotTracker
}

// StartCluster turns this node into one shard of a cluster. cfg.Self must
// be the address peers reach this node at (so it is only known after the
// listener is bound, which is why this is not part of Config/New). The
// membership starts probing immediately; call StopCluster on shutdown.
//
// Routing is by derivation key on a consistent-hash ring: a local cache
// miss for a key another live shard owns is answered by asking that owner
// (POST /v1/peer/artifact) instead of running the local engine, so each
// node's singleflight composes into a cluster-wide one — N nodes under any
// request mix run one engine derivation per distinct key, as long as the
// ring is stable. An unreachable owner is marked dead (rerouting the key)
// and the request falls back to the local engine: shard loss degrades
// dedup, never availability.
func (s *Server) StartCluster(cfg cluster.Config) {
	if cfg.Logf == nil {
		cfg.Logf = s.logf
	}
	if cfg.HotKeyRPS == 0 {
		cfg.HotKeyRPS = cluster.DefaultHotKeyRPS
	}
	mem := cluster.New(cfg)
	mem.Start()
	cs := &clusterState{
		mem:    mem,
		client: api.NewClient(cfg.Self, api.WithTimeout(s.cfg.MaxTimeout+10*time.Second)),
		hot:    cluster.NewHotTracker(cfg.HotKeyRPS),
	}
	s.cluster.Store(cs)
	s.logf("quotd: cluster enabled: self=%s peers=%d hot-rps=%d", cfg.Self, len(cfg.Peers), cfg.HotKeyRPS)
}

// StopCluster stops the membership prober. The node keeps serving (and
// answering peer fills already in flight); it just stops updating its view.
func (s *Server) StopCluster() {
	if cs := s.cluster.Swap(nil); cs != nil {
		cs.mem.Stop()
	}
}

// ClusterSelf returns this node's advertised address ("" when not
// clustered).
func (s *Server) ClusterSelf() string {
	if cs := s.cluster.Load(); cs != nil {
		return cs.mem.Self()
	}
	return ""
}

// tryPeerFill routes a local cache miss to the key's owner shard. It
// returns nil when this node should derive locally instead: not clustered,
// the key is self-owned, or the owner could not answer (transport failure
// marks the owner dead and retries the rerouted owner once; an
// authoritative owner error — overload, timeout — falls back immediately,
// because the local engine can still give the client a real answer).
// Successful fills of hot keys are replicated into the local cache.
func (s *Server) tryPeerFill(ctx context.Context, cr *compiledRequest, req *api.DeriveRequest) (*api.PeerFillResponse, string) {
	cs := s.cluster.Load()
	if cs == nil {
		return nil, ""
	}
	owner := cs.mem.Owner(cr.key)
	if owner == "" || owner == cs.mem.Self() {
		return nil, ""
	}
	// Track the key's local request rate while it is foreign-owned; crossing
	// the threshold replicates the artifact below so subsequent requests hit
	// the local cache instead of paying the hop.
	hot := cs.hot.Observe(cr.key)

	attempted := false
	for hop := 0; hop < 2 && owner != "" && owner != cs.mem.Self(); hop++ {
		attempted = true
		fill, err := cs.client.PeerFill(ctx, owner, req)
		if err == nil {
			s.met.peerFills.Add(1)
			if fill.Artifact.Key != cr.key {
				// A peer answering for the wrong key would poison the cache;
				// treat it as unavailable and derive locally.
				s.logf("quotd: peer %s answered key %s for %s; ignoring", owner,
					shortKey(fill.Artifact.Key), shortKey(cr.key))
				break
			}
			if hot {
				s.cache.Put(fill.Artifact)
				s.met.hotReplicated.Add(1)
			}
			return fill, owner
		}
		if _, ok := err.(*api.Error); ok {
			// The owner answered and said no (queue full, deadline, ...). It
			// is alive; don't touch the ring — just derive locally.
			s.logf("quotd: peer fill %s declined by %s: %v", shortKey(cr.key), owner, err)
			break
		}
		// Transport failure: the owner is gone. Mark it dead (the ring
		// rebuilds, rerouting its keyspace) and try the new owner once.
		s.logf("quotd: peer fill %s: owner %s unreachable: %v", shortKey(cr.key), owner, err)
		cs.mem.ReportFailure(owner)
		owner = cs.mem.Owner(cr.key)
	}
	if attempted {
		s.met.peerUnavailable.Add(1)
	}
	return nil, ""
}

// handlePeerFill is POST /v1/peer/artifact: another shard asks this node —
// the key's owner in the asker's view — to answer from cache or derive.
// The request is served entirely locally (never forwarded again), so a
// routing disagreement during a ring rebuild costs one extra derivation at
// worst and can never loop.
func (s *Server) handlePeerFill(w http.ResponseWriter, r *http.Request) {
	var pf api.PeerFillRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&pf); err != nil {
		writeJSON(w, http.StatusBadRequest, &api.Error{Code: api.ErrCodeBadRequest,
			Message: "body: " + err.Error()})
		return
	}
	cr, werr := s.compile(&pf.Request)
	if werr != nil {
		writeJSON(w, api.HTTPStatus(werr.Code), werr)
		return
	}
	e, cached := s.cache.Get(cr.key)
	if !cached {
		var werr *api.Error
		if e, _, werr = s.deriveFlight(r.Context(), cr); werr != nil {
			writeJSON(w, api.HTTPStatus(werr.Code), werr)
			return
		}
	}
	s.met.peerServed.Add(1)
	s.logf("quotd: peer fill served key=%s cached=%t", shortKey(e.Key), cached)
	writeJSON(w, http.StatusOK, &api.PeerFillResponse{
		Artifact: e, Cached: cached, Shard: s.ClusterSelf(),
	})
}

// handlePeerArtifact is GET /v1/peer/artifact/{key}: fetch a cached
// artifact without triggering a derivation — the preload path.
func (s *Server) handlePeerArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	e, ok := s.cache.Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, &api.Error{Code: api.ErrCodeNotFound,
			Message: fmt.Sprintf("no artifact for key %s", shortKey(key))})
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// handlePeerKeys is GET /v1/peer/keys: the in-memory cache's keys, LRU
// first — what a warm-starting node replays via PreloadFromPeer.
func (s *Server) handlePeerKeys(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &api.PeerKeysResponse{Keys: s.cache.Keys()})
}

// PreloadFromPeer copies every artifact in the peer's in-memory cache into
// this node's cache — the warm-start substrate for a fresh or rejoining
// shard (the disk store, when configured, plays the same role across
// restarts of one node). Returns how many artifacts were loaded; individual
// fetch failures are logged and skipped, because a partial warm start is
// strictly better than none.
func (s *Server) PreloadFromPeer(ctx context.Context, addr string) (int, error) {
	c := api.NewClient(addr)
	keys, err := c.PeerKeys(ctx, addr)
	if err != nil {
		return 0, fmt.Errorf("server: preload from %s: %w", addr, err)
	}
	loaded := 0
	for _, key := range keys {
		e, err := c.PeerArtifact(ctx, addr, key)
		if err != nil {
			s.logf("quotd: preload %s from %s: %v", shortKey(key), addr, err)
			continue
		}
		s.cache.Put(e)
		loaded++
	}
	s.logf("quotd: preloaded %d/%d artifact(s) from %s", loaded, len(keys), addr)
	return loaded, nil
}
