package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"protoquot/internal/api"
	"protoquot/internal/codegen"
	"protoquot/internal/convrt"
	"protoquot/internal/dsl"
	"protoquot/internal/render"
)

// Cache is the content-addressed converter cache: an LRU-bounded in-memory
// map keyed by api.CacheKey, with optional write-through persistence of
// envelope and converter artifacts to a directory. Entries are api.Artifact
// values — immutable once stored, so repeat requests (and shard peers) are
// served from them bit-identically. Renderings (DOT, Go source) are not
// stored; they are deterministic functions of the converter, recomputed on
// demand and, under disk persistence, written once as sibling artifacts.
// All methods are safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *api.Artifact
	byKey map[string]*list.Element
	dir   string // "" disables persistence
	logf  func(format string, args ...any)

	hits, misses, evictions atomic.Int64
	diskHits, diskErrors    atomic.Int64
}

// NewCache returns a cache bounded to max entries (min 1). dir, when
// non-empty, enables disk persistence: every stored entry is written
// through as <key>.json plus converter artifacts (<key>.spec, <key>.dot,
// and <key>.go when the converter is deterministic enough for codegen), and
// an in-memory miss falls back to <key>.json before counting as a miss —
// so a restarted daemon keeps its warm set. logf, when non-nil, receives
// persistence problems (they degrade the cache, never the request).
func NewCache(max int, dir string, logf func(format string, args ...any)) (*Cache, error) {
	if max < 1 {
		max = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
		dir:   dir,
		logf:  logf,
	}, nil
}

// Get returns the entry stored under key, consulting disk on an in-memory
// miss when persistence is enabled.
func (c *Cache) Get(key string) (*api.Artifact, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*api.Artifact)
		c.mu.Unlock()
		c.hits.Add(1)
		return e, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if e, ok := c.diskGet(key); ok {
			c.insert(e, false) // promote without re-writing to disk
			c.hits.Add(1)
			c.diskHits.Add(1)
			return e, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores an entry, evicting the least recently used entry beyond the
// bound and writing through to disk when persistence is enabled.
func (c *Cache) Put(e *api.Artifact) {
	c.insert(e, c.dir != "")
}

func (c *Cache) insert(e *api.Artifact, persist bool) {
	c.mu.Lock()
	if el, ok := c.byKey[e.Key]; ok {
		c.ll.MoveToFront(el)
		el.Value = e
	} else {
		c.byKey[e.Key] = c.ll.PushFront(e)
		for c.ll.Len() > c.max {
			back := c.ll.Back()
			old := back.Value.(*api.Artifact)
			c.ll.Remove(back)
			delete(c.byKey, old.Key)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
	if persist {
		c.diskPut(e)
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the in-memory keys, least recently used first — the order a
// warm-start preload should replay them so the hottest entries end up most
// recently used on the receiving node.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*api.Artifact).Key)
	}
	return out
}

// Counters returns the cumulative hit/miss/eviction/disk counters.
func (c *Cache) Counters() (hits, misses, evictions, diskHits, diskErrors int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(),
		c.diskHits.Load(), c.diskErrors.Load()
}

// entryPath sanity-checks the key before using it as a file name: CacheKey
// only ever produces lowercase hex, so anything else is rejected rather
// than spliced into a path.
func (c *Cache) entryPath(key, ext string) (string, bool) {
	if len(key) != 64 || strings.Trim(key, "0123456789abcdef") != "" {
		return "", false
	}
	return filepath.Join(c.dir, key+ext), true
}

func (c *Cache) diskGet(key string) (*api.Artifact, bool) {
	p, ok := c.entryPath(key, ".json")
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var e api.Artifact
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
		c.diskErrors.Add(1)
		c.logf("cache: corrupt entry %s: %v", p, err)
		return nil, false
	}
	// The compiled-table class is validated independently: a corrupt table
	// is a miss for that class only, never for the artifact — drop it and
	// rebuild from the converter, which remains the source of truth.
	if e.Table != "" {
		if _, err := convrt.Decode([]byte(e.Table)); err != nil {
			c.diskErrors.Add(1)
			c.logf("cache: corrupt table in %s: %v (dropping that artifact class)", p, err)
			e.Table = ""
		}
	}
	if e.Table == "" && e.Exists && e.Converter != "" {
		if conv, err := dsl.ParseString(e.Converter); err == nil {
			if table, err := convrt.CompileEncoded(conv); err == nil {
				e.Table = string(table)
			}
		}
	}
	return &e, true
}

// diskPut writes the envelope and the converter artifacts. Each file is
// written atomically (temp + rename) so a crashed daemon never leaves a
// half-written entry for its successor to trust.
func (c *Cache) diskPut(e *api.Artifact) {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		c.diskErrors.Add(1)
		c.logf("cache: marshal %s: %v", e.Key, err)
		return
	}
	c.writeAtomic(e.Key, ".json", data)
	if !e.Exists || e.Converter == "" {
		return
	}
	c.writeAtomic(e.Key, ".spec", []byte(e.Converter))
	conv, err := dsl.ParseString(e.Converter)
	if err != nil {
		c.diskErrors.Add(1)
		c.logf("cache: reparse converter %s: %v", e.Key, err)
		return
	}
	c.writeAtomic(e.Key, ".dot", []byte(render.DOTString(conv, render.DOTOptions{})))
	// Codegen requires a deterministic converter; the maximal converter
	// usually is not, so a failure here is expected and not an error.
	if src, err := codegen.Generate(conv, codegen.Config{Package: "converter"}); err == nil {
		c.writeAtomic(e.Key, ".go", src)
	}
	// The compiled-table sidecar is the execution runtime's artifact class:
	// <key>.table is directly loadable by `convrt -table`. Prefer the bytes
	// already on the artifact; rebuild them when an older producer omitted
	// them. Same eligibility as codegen, so failures are likewise expected.
	table := []byte(e.Table)
	if len(table) == 0 {
		if t, err := convrt.CompileEncoded(conv); err == nil {
			table = t
		}
	}
	if len(table) > 0 {
		c.writeAtomic(e.Key, ".table", table)
	}
}

func (c *Cache) writeAtomic(key, ext string, data []byte) {
	p, ok := c.entryPath(key, ext)
	if !ok {
		c.diskErrors.Add(1)
		c.logf("cache: refusing non-hex key %q", key)
		return
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		c.diskErrors.Add(1)
		c.logf("cache: write %s: %v", tmp, err)
		return
	}
	if err := os.Rename(tmp, p); err != nil {
		c.diskErrors.Add(1)
		c.logf("cache: rename %s: %v", p, err)
		os.Remove(tmp)
	}
}
