package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"protoquot/internal/api"
)

// TestGoldenHTTPResponses pins the exact wire shape of the HTTP API. The
// envelope is part of the daemon's contract (and shared with `quotient
// -json`), so any field rename, addition, or re-ordering must show up as a
// reviewed diff here, not as a silent client breakage.
//
// Regenerate with:
//
//	PROTOQUOT_GOLDEN=update go test -run TestGoldenHTTPResponses ./internal/server
func TestGoldenHTTPResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post := func(path string, body any) []byte {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	minimized := simpleRequest()
	minimized.Options.Prune = true
	minimized.Options.Minimize = true

	cases := []struct {
		name string
		body []byte
	}{
		{"derive-ok", post("/v1/derive", simpleRequest())},
		{"derive-minimized", post("/v1/derive", minimized)},
		{"derive-no-converter", post("/v1/derive", api.DeriveRequest{
			Service: api.SpecSource{Inline: serviceText},
			Envs:    []api.SpecSource{{Inline: doomedWorld}},
		})},
		{"derive-bad-request", post("/v1/derive", api.DeriveRequest{
			Service: api.SpecSource{Inline: serviceText},
		})},
		{"derive-bad-spec", post("/v1/derive", api.DeriveRequest{
			Service: api.SpecSource{Inline: "spec X\ninit\n"},
			Envs:    []api.SpecSource{{Inline: worldText}},
		})},
		{"spec-upload", post("/v1/specs", api.SpecUploadRequest{Text: serviceText})},
	}

	update := os.Getenv("PROTOQUOT_GOLDEN") == "update"
	for _, tc := range cases {
		got := normalizeGolden(t, tc.body)
		path := filepath.Join("testdata", "golden", tc.name+".json")
		if update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with PROTOQUOT_GOLDEN=update)", tc.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: response drifted from golden\n--- got ---\n%s\n--- want ---\n%s",
				tc.name, got, want)
		}
	}
}

// normalizeGolden zeroes the volatile per-request fields — request id, wall
// times — while leaving every semantic field (keys, converters, counters)
// exact.
func normalizeGolden(t *testing.T, body []byte) []byte {
	t.Helper()
	var v map[string]any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	if _, ok := v["request_id"]; ok {
		v["request_id"] = "r000000"
	}
	if _, ok := v["elapsed_ms"]; ok {
		v["elapsed_ms"] = 0
	}
	if stats, ok := v["stats"].(map[string]any); ok {
		for _, k := range []string{"safety_wall_ms", "progress_wall_ms", "env_expansion_ms"} {
			if _, ok := stats[k]; ok {
				stats[k] = 0
			}
		}
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}
