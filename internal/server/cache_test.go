package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"protoquot/internal/api"
	"protoquot/internal/dsl"
)

// hexKey builds a synthetic but well-formed cache key (64 lowercase hex).
func hexKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

func entry(i int) *api.Artifact {
	return &api.Artifact{Key: hexKey(i), Exists: true, Converter: "spec C\ninit c0\n"}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(entry(1))
	c.Put(entry(2))
	// Touch 1 so 2 becomes the eviction victim.
	if _, ok := c.Get(hexKey(1)); !ok {
		t.Fatal("entry 1 missing")
	}
	c.Put(entry(3))
	if _, ok := c.Get(hexKey(2)); ok {
		t.Error("entry 2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(hexKey(1)); !ok {
		t.Error("recently used entry 1 was evicted")
	}
	if _, ok := c.Get(hexKey(3)); !ok {
		t.Error("entry 3 missing")
	}
	hits, misses, evictions, _, _ := c.Counters()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if hits != 3 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheReplaceSameKey(t *testing.T) {
	c, _ := NewCache(2, "", nil)
	c.Put(entry(1))
	e := entry(1)
	e.Converter = "spec C2\ninit c0\n"
	c.Put(e)
	if c.Len() != 1 {
		t.Errorf("replacing a key grew the cache to %d entries", c.Len())
	}
	got, _ := c.Get(hexKey(1))
	if got.Converter != e.Converter {
		t.Error("replacement entry not returned")
	}
}

func TestCacheDiskPersistenceAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	// A real converter so the artifact set is complete.
	conv := "spec C\ninit c0\next c0 x c0\n"
	if _, err := dsl.ParseString(conv); err != nil {
		t.Fatal(err)
	}
	e := &api.Artifact{Key: hexKey(7), Exists: true, Converter: conv,
		Stats: &api.WireStats{FinalStates: 1}}

	c1, err := NewCache(4, dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(e)
	for _, ext := range []string{".json", ".spec", ".dot"} {
		p := filepath.Join(dir, hexKey(7)+ext)
		if _, err := os.Stat(p); err != nil {
			t.Errorf("artifact %s not persisted: %v", ext, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, hexKey(7)+".spec"))
	if err != nil || string(data) != conv {
		t.Errorf("persisted .spec differs: %q err=%v", data, err)
	}

	// A new instance over the same dir — a restarted daemon — serves the
	// entry from disk and counts a disk hit.
	c2, err := NewCache(4, dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(hexKey(7))
	if !ok {
		t.Fatal("entry not recovered from disk")
	}
	if got.Converter != conv || got.Stats == nil || got.Stats.FinalStates != 1 {
		t.Errorf("recovered entry differs: %+v", got)
	}
	_, _, _, diskHits, diskErrors := c2.Counters()
	if diskHits != 1 || diskErrors != 0 {
		t.Errorf("diskHits/diskErrors = %d/%d, want 1/0", diskHits, diskErrors)
	}
	// Now in memory: a second Get must not touch disk again.
	c2.Get(hexKey(7))
	if _, _, _, dh, _ := c2.Counters(); dh != 1 {
		t.Errorf("in-memory hit went to disk (diskHits=%d)", dh)
	}
}

func TestCacheCorruptDiskEntryTolerated(t *testing.T) {
	dir := t.TempDir()
	key := hexKey(9)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged strings.Builder
	c, err := NewCache(4, dir, func(f string, v ...any) {
		fmt.Fprintf(&logged, f+"\n", v...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served")
	}
	_, misses, _, _, diskErrors := c.Counters()
	if misses != 1 || diskErrors != 1 {
		t.Errorf("misses/diskErrors = %d/%d, want 1/1", misses, diskErrors)
	}
	if !strings.Contains(logged.String(), "corrupt") {
		t.Errorf("corruption not logged: %q", logged.String())
	}

	// Key-mismatch corruption (entry copied under the wrong name) is also
	// rejected: content addressing means the name must match the content.
	wrong := hexKey(10)
	if err := os.WriteFile(filepath.Join(dir, wrong+".json"),
		[]byte(`{"key":"`+key+`","exists":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(wrong); ok {
		t.Error("entry with mismatched key served")
	}
}

func TestCacheRejectsNonHexKeys(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(4, dir, nil)
	// A hostile key must never reach the filesystem.
	c.Put(&api.Artifact{Key: "../../etc/passwd", Exists: true, Converter: "x"})
	if _, err := os.Stat(filepath.Join(dir, "..", "..", "etc")); err == nil {
		t.Fatal("path traversal")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("non-hex key produced files: %v", entries)
	}
	if _, _, _, _, diskErrors := c.Counters(); diskErrors == 0 {
		t.Error("refusal not counted as a disk error")
	}
}
