package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"protoquot/internal/api"
)

// TestBadSpecCarriesRoleAndLine pins the structured parse-error contract:
// a malformed spec is 400 with code bad_spec, naming the offending input
// and the line inside its DSL text.
func TestBadSpecCarriesRoleAndLine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  api.DeriveRequest
		role string
	}{
		{"service", api.DeriveRequest{
			Service: api.SpecSource{Inline: "spec X\ninit\n"},
			Envs:    []api.SpecSource{{Inline: worldText}},
		}, "service"},
		{"env", api.DeriveRequest{
			Service: api.SpecSource{Inline: serviceText},
			Envs:    []api.SpecSource{{Inline: worldText}, {Inline: "spec Y\next b0\n"}},
		}, "envs[1]"},
	}
	for _, tc := range cases {
		out, code := postDerive(t, ts.URL, tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if out.Error == nil || out.Error.Code != api.ErrCodeBadSpec {
			t.Fatalf("%s: error %+v, want bad_spec", tc.name, out.Error)
		}
		if out.Error.Role != tc.role {
			t.Errorf("%s: role %q, want %q", tc.name, out.Error.Role, tc.role)
		}
		if out.Error.Line < 2 {
			t.Errorf("%s: line %d, want the offending line (>= 2)", tc.name, out.Error.Line)
		}
	}
}

// TestSpecUploadBadSpecIs400 pins the upload path: malformed DSL is 400
// with the structured bad_spec envelope, not a plain-text error.
func TestSpecUploadBadSpecIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(api.SpecUploadRequest{Text: "spec X\ninit\n"})
	resp, err := http.Post(ts.URL+"/v1/specs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var werr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&werr); err != nil {
		t.Fatal(err)
	}
	if werr.Code != api.ErrCodeBadSpec || werr.Line < 2 {
		t.Errorf("want bad_spec with a line, got %+v", werr)
	}
}

// TestQueueFullKeeps503RetryAfterAndStructuredBody pins the shedding
// contract end to end: HTTP 503, a Retry-After header, and a queue_full
// envelope a client can branch on.
func TestQueueFullKeeps503RetryAfterAndStructuredBody(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolWorkers: 1, MaxQueue: -1})
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s.preDerive = func(string) {
		once.Do(func() { close(entered) })
		<-release
	}
	defer close(release)
	go func() {
		hold, _ := json.Marshal(simpleRequest())
		resp, err := http.Post(ts.URL+"/v1/derive", "application/json", bytes.NewReader(hold))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	req := simpleRequest()
	req.Options.OmitVacuous = true // distinct key: cannot coalesce, must shed
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/derive", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if v := resp.Header.Get(api.VersionHeader); v != api.Version {
		t.Errorf("%s = %q, want %q", api.VersionHeader, v, api.Version)
	}
	var out api.DeriveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Error == nil || out.Error.Code != api.ErrCodeQueueFull {
		t.Errorf("want queue_full envelope, got %+v", out.Error)
	}
}

// TestResponsesCarryVersionHeader: every JSON response advertises the
// protocol version clients use to reject skew.
func TestResponsesCarryVersionHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/stats", "/v1/specs", "/v1/peer/keys"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v := resp.Header.Get(api.VersionHeader); v != api.Version {
			t.Errorf("GET %s: %s = %q, want %q", path, api.VersionHeader, v, api.Version)
		}
	}
}
