package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"protoquot/internal/api"
)

// errOverloaded is returned by the pool when the wait queue is full; the
// handler maps it to HTTP 503 + Retry-After.
var errOverloaded = errors.New("server: derivation queue full")

// pool bounds how many derivations run at once and how many may wait. A
// request that cannot even queue is rejected immediately — shedding load at
// the door beats stacking unbounded goroutines on a PSPACE-hard engine.
type pool struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64 // requests holding a queue ticket (incl. running)
	inflight atomic.Int64 // requests currently inside the engine
}

func newPool(workers, maxQueue int) *pool {
	if workers < 1 {
		workers = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &pool{slots: make(chan struct{}, workers), maxQueue: int64(maxQueue)}
}

// acquire claims an execution slot, waiting in the bounded queue. It fails
// fast with errOverloaded when the queue is full, and honors ctx while
// waiting. On success the caller must release().
func (p *pool) acquire(ctx context.Context) error {
	if p.queued.Add(1) > int64(cap(p.slots))+p.maxQueue {
		p.queued.Add(-1)
		return errOverloaded
	}
	select {
	case p.slots <- struct{}{}:
		p.inflight.Add(1)
		return nil
	case <-ctx.Done():
		p.queued.Add(-1)
		return ctx.Err()
	}
}

func (p *pool) release() {
	p.inflight.Add(-1)
	p.queued.Add(-1)
	<-p.slots
}

// depths reports (queued-but-not-running, running).
func (p *pool) depths() (queueDepth, inflight int64) {
	q, r := p.queued.Load(), p.inflight.Load()
	if d := q - r; d > 0 {
		queueDepth = d
	}
	return queueDepth, r
}

// flightResult is what a completed flight hands every waiter.
type flightResult struct {
	entry *api.Artifact // cacheable outcome (converter or nonexistence)
	err   error         // non-cacheable failure (timeout, overload, internal)
}

// flight is one in-progress derivation, shared by every request that asked
// for the same key while it ran.
type flight struct {
	done    chan struct{}
	res     flightResult
	waiters atomic.Int64 // requests beyond the leader that joined
}

// flightGroup deduplicates concurrent derivations by cache key
// (singleflight): the first request for a key becomes the leader and runs
// the engine; identical requests arriving before it finishes block on the
// same flight and share its result, so N identical concurrent requests cost
// one engine run.
type flightGroup struct {
	mu     sync.Mutex
	flying map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flying: make(map[string]*flight)}
}

// do runs fn under singleflight. The second return reports whether this
// call joined an existing flight (true) rather than leading one.
func (g *flightGroup) do(ctx context.Context, key string, fn func() flightResult) (flightResult, bool, error) {
	g.mu.Lock()
	if f, ok := g.flying[key]; ok {
		f.waiters.Add(1)
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, nil
		case <-ctx.Done():
			// The flight keeps running for the remaining waiters (and the
			// cache); only this request gives up.
			return flightResult{}, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flying[key] = f
	g.mu.Unlock()

	f.res = fn()
	g.mu.Lock()
	delete(g.flying, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, false, nil
}
