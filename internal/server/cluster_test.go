package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"protoquot/internal/cluster"
)

// clusterNode is one in-process shard: the Server plus its live listener.
type clusterNode struct {
	srv  *Server
	ts   *httptest.Server
	addr string // host:port, the ring member name
}

// newTestCluster starts n nodes that all know each other, with fast health
// probes. Each node's advertised address is its httptest listener address.
func newTestCluster(t *testing.T, n int, cfg Config, hotRPS int) []*clusterNode {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	nodes := make([]*clusterNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(s.Abort)
		nodes[i] = &clusterNode{srv: s, ts: ts, addr: strings.TrimPrefix(ts.URL, "http://")}
		addrs[i] = nodes[i].addr
	}
	for i, nd := range nodes {
		peers := make([]string, 0, n-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		nd.srv.StartCluster(cluster.Config{
			Self:          nd.addr,
			Peers:         peers,
			ProbeInterval: 25 * time.Millisecond,
			HotKeyRPS:     hotRPS,
		})
		t.Cleanup(nd.srv.StopCluster)
	}
	return nodes
}

func TestClusterWideSingleflightViaPeerFill(t *testing.T) {
	nodes := newTestCluster(t, 3, Config{}, -1)
	req := simpleRequest()

	// Every node answers the same request; only one engine run may happen
	// anywhere, because non-owners route their miss to the owner.
	for i, nd := range nodes {
		out, code := postDerive(t, nd.ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("node %d: status %d: %+v", i, code, out.Error)
		}
		if !out.Exists || out.Converter == "" {
			t.Fatalf("node %d: no converter: %+v", i, out)
		}
	}
	var derives, peerFills, peerServed int64
	for _, nd := range nodes {
		st := nd.srv.statsSnapshot()
		derives += st.Derives
		peerFills += st.PeerFills
		peerServed += st.PeerServed
		if !st.ClusterEnabled || st.ClusterSelf != nd.addr {
			t.Errorf("cluster stats missing: %+v", st)
		}
		if st.ClusterPeersUp != 2 || st.ClusterPeersDown != 0 {
			t.Errorf("node %s: peers up/down = %d/%d, want 2/0",
				nd.addr, st.ClusterPeersUp, st.ClusterPeersDown)
		}
	}
	if derives != 1 {
		t.Errorf("engine ran %d times across the cluster for one distinct key, want 1", derives)
	}
	if peerFills != 2 || peerServed != 2 {
		t.Errorf("peer fills/served = %d/%d, want 2/2 (two non-owners, one owner)", peerFills, peerServed)
	}
}

func TestPeerFillResponseNamesTheShard(t *testing.T) {
	nodes := newTestCluster(t, 3, Config{}, -1)
	req := simpleRequest()
	var shards []string
	for _, nd := range nodes {
		out, code := postDerive(t, nd.ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("status %d: %+v", code, out.Error)
		}
		shards = append(shards, out.Shard)
	}
	// Exactly one node is the owner (Shard empty: answered itself); the two
	// others name the owner.
	var owner string
	empties := 0
	for _, sh := range shards {
		if sh == "" {
			empties++
		} else if owner == "" {
			owner = sh
		} else if sh != owner {
			t.Errorf("two different shards named as owner: %s vs %s", owner, sh)
		}
	}
	if empties != 1 || owner == "" {
		t.Errorf("shards = %v: want exactly one self-answer and two fills from one owner", shards)
	}
}

func TestOwnerDownFallsBackToLocalDerivation(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{}, -1)

	// Find a request the dead node will own, from the survivor's view.
	survivor, victim := nodes[0], nodes[1]
	req, found := simpleRequest(), false
	for j := 0; j < 64 && !found; j++ {
		req.Options.MaxStates = 100000 + j // semantically inert, changes the key
		cr, werr := survivor.srv.compile(&req)
		if werr != nil {
			t.Fatal(werr)
		}
		found = survivor.srv.cluster.Load().mem.Owner(cr.key) == victim.addr
	}
	if !found {
		t.Fatal("no victim-owned key found in 64 variants")
	}

	victim.ts.Close() // shard loss, mid-cluster
	out, code := postDerive(t, survivor.ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("owner loss surfaced to the client: status %d: %+v", code, out.Error)
	}
	if !out.Exists || out.Shard != "" {
		t.Fatalf("want a locally derived converter, got %+v", out)
	}
	st := survivor.srv.statsSnapshot()
	if st.PeerUnavailable < 1 {
		t.Errorf("peer_unavailable = %d, want >= 1", st.PeerUnavailable)
	}
	if st.Derives != 1 {
		t.Errorf("local fallback ran the engine %d times, want 1", st.Derives)
	}
	// The failed fill marked the victim dead immediately; repeat requests
	// stop attempting the hop.
	before := st.PeerUnavailable
	again, _ := postDerive(t, survivor.ts.URL, req)
	if !again.Cached {
		t.Error("repeat after fallback should hit the local cache")
	}
	if st2 := survivor.srv.statsSnapshot(); st2.PeerUnavailable != before {
		t.Errorf("cache hit should not attempt a peer fill (peer_unavailable %d -> %d)",
			before, st2.PeerUnavailable)
	}
}

func TestHotKeyReplicatesIntoLocalCache(t *testing.T) {
	nodes := newTestCluster(t, 2, Config{}, 1) // threshold 1 rps: hot at once
	// Find a request the *other* node owns so node 0 must fill.
	req, found := simpleRequest(), false
	for j := 0; j < 64 && !found; j++ {
		req.Options.MaxStates = 100000 + j
		cr, werr := nodes[0].srv.compile(&req)
		if werr != nil {
			t.Fatal(werr)
		}
		found = nodes[0].srv.cluster.Load().mem.Owner(cr.key) == nodes[1].addr
	}
	if !found {
		t.Fatal("no foreign-owned key found")
	}
	first, code := postDerive(t, nodes[0].ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, first.Error)
	}
	if first.Shard != nodes[1].addr {
		t.Fatalf("first request should be peer-filled from the owner, got shard %q", first.Shard)
	}
	st := nodes[0].srv.statsSnapshot()
	if st.HotReplicated != 1 {
		t.Fatalf("hot_replicated = %d, want 1 (threshold is 1 rps)", st.HotReplicated)
	}
	// Replicated artifact now serves locally: cache hit, no shard, no hop.
	second, _ := postDerive(t, nodes[0].ts.URL, req)
	if !second.Cached || second.Shard != "" {
		t.Errorf("replicated key should hit the local cache: %+v", second)
	}
	if second.Converter != first.Converter {
		t.Error("replicated artifact differs from the owner's")
	}
}

func TestPreloadFromPeerWarmStart(t *testing.T) {
	// Not a cluster test per se: a fresh node copies a peer's in-memory
	// artifacts before joining, so it starts warm.
	_, warmTS := newTestServer(t, Config{})
	out, code := postDerive(t, warmTS.URL, simpleRequest())
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	fresh, freshTS := newTestServer(t, Config{})
	n, err := fresh.PreloadFromPeer(context.Background(),
		strings.TrimPrefix(warmTS.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("preloaded %d artifacts, want 1", n)
	}
	got, _ := postDerive(t, freshTS.URL, simpleRequest())
	if !got.Cached {
		t.Error("preloaded node should serve from cache")
	}
	if got.Key != out.Key || got.Converter != out.Converter {
		t.Error("preloaded artifact is not bit-identical to the origin's")
	}
	if st := fresh.statsSnapshot(); st.Derives != 0 {
		t.Errorf("preloaded node ran the engine %d times, want 0", st.Derives)
	}
}
