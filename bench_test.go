// Benchmark harness for the reproduction: one benchmark per paper artifact
// (figures 7–18 and the §7 complexity claims), plus baseline comparisons
// and the deployment runtime. EXPERIMENTS.md records the measured shapes
// against the paper's qualitative claims. Run with:
//
//	go test -bench=. -benchmem .
package protoquot

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"testing"
	"time"

	"protoquot/internal/baseline"
	"protoquot/internal/compose"
	"protoquot/internal/core"
	"protoquot/internal/engine"
	"protoquot/internal/protocols"
	"protoquot/internal/runtime"
	"protoquot/internal/sat"
	"protoquot/internal/spec"
	"protoquot/internal/specgen"
)

// --- E2/E3: protocol systems provide their services (figures 7, 8) ---

func BenchmarkFigure7ABSystemVerify(b *testing.B) {
	svc := protocols.Service()
	for i := 0; i < b.N; i++ {
		sys := protocols.ABSystem()
		if err := sat.Satisfies(sys, svc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8NSSystemVerify(b *testing.B) {
	svc := protocols.AtLeastOnceService()
	for i := 0; i < b.N; i++ {
		sys := protocols.NSSystem()
		if err := sat.Satisfies(sys, svc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Figure 12, safety phase of the symmetric configuration ---

func BenchmarkFigure12SafetyPhase(b *testing.B) {
	svc, bsym := protocols.Service(), protocols.SymmetricB()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := core.Derive(svc, bsym, core.Options{SafetyOnly: true, OmitVacuous: true})
		if err != nil {
			b.Fatal(err)
		}
		states = res.Stats.SafetyStates
	}
	b.ReportMetric(float64(states), "states")
}

// --- E7: Figure 9/12 full derivation — the paper's negative result ---

func BenchmarkFigure12FullQuotient(b *testing.B) {
	svc, bsym := protocols.Service(), protocols.SymmetricB()
	for i := 0; i < b.N; i++ {
		_, err := core.Derive(svc, bsym, core.Options{OmitVacuous: true})
		var nq *core.NoQuotientError
		if !errors.As(err, &nq) {
			b.Fatalf("expected no quotient, got %v", err)
		}
	}
}

// --- E8: weakened service admits a converter in the same configuration ---

func BenchmarkWeakenedServiceQuotient(b *testing.B) {
	svc, bsym := protocols.AtLeastOnceService(), protocols.SymmetricB()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := core.Derive(svc, bsym, core.Options{OmitVacuous: true})
		if err != nil {
			b.Fatal(err)
		}
		states = res.Stats.FinalStates
	}
	b.ReportMetric(float64(states), "states")
}

// --- E9: Figures 13/14, the co-located configuration ---

func BenchmarkFigure14Quotient(b *testing.B) {
	svc, bco := protocols.Service(), protocols.ColocatedB()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := core.Derive(svc, bco, core.Options{OmitVacuous: true})
		if err != nil {
			b.Fatal(err)
		}
		states = res.Stats.FinalStates
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkFigure14Prune(b *testing.B) {
	svc, bco := protocols.Service(), protocols.ColocatedB()
	res, err := core.Derive(svc, bco, core.Options{OmitVacuous: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		pruned, err := core.Prune(svc, bco, res.Converter)
		if err != nil {
			b.Fatal(err)
		}
		states = pruned.NumStates()
	}
	b.ReportMetric(float64(states), "states")
}

// --- E10: Section 6 transport configurations (figures 16–18) ---

func BenchmarkFigure16PassThroughCheck(b *testing.B) {
	weak := protocols.CSTConcat()
	for i := 0; i < b.N; i++ {
		sys, err := compose.Many(protocols.TransportA(), protocols.NetA(false),
			protocols.PassThrough(), protocols.NetB(), protocols.TransportB())
		if err != nil {
			b.Fatal(err)
		}
		if err := sat.Satisfies(sys, weak); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure17TransportQuotient(b *testing.B) {
	svc, env := protocols.CST(), protocols.TransportB17()
	for i := 0; i < b.N; i++ {
		if _, err := core.Derive(svc, env, core.Options{OmitVacuous: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure18TransportQuotient(b *testing.B) {
	svc, env := protocols.CST(), protocols.TransportB18()
	for i := 0; i < b.N; i++ {
		if _, err := core.Derive(svc, env, core.Options{OmitVacuous: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: §7 complexity claims — safety phase exponential in the number
// of components, progress phase polynomial in the safety-phase output.
// The lane family composes n independent request/response lanes: |S_B| =
// 4^n. Compare SafetyPhase and FullQuotient growth; their difference is
// the progress phase.

func benchLanes(b *testing.B, n int, safetyOnly bool) {
	svc, env := protocols.LaneService(n), protocols.LaneSystem(n)
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := core.Derive(svc, env, core.Options{OmitVacuous: true, SafetyOnly: safetyOnly})
		if err != nil {
			b.Fatal(err)
		}
		states = res.Stats.SafetyStates
	}
	b.ReportMetric(float64(states), "safety-states")
}

func BenchmarkScalingSafetyPhase(b *testing.B) {
	for n := 1; n <= 5; n++ {
		b.Run(fmt.Sprintf("lanes=%d", n), func(b *testing.B) { benchLanes(b, n, true) })
	}
}

func BenchmarkScalingFullQuotient(b *testing.B) {
	for n := 1; n <= 5; n++ {
		b.Run(fmt.Sprintf("lanes=%d", n), func(b *testing.B) { benchLanes(b, n, false) })
	}
}

// --- E12: baseline comparison — Okumura's bottom-up seed method is fast
// but needs an a posteriori global check; the quotient method answers
// definitively.

func BenchmarkOkumuraBaseline(b *testing.B) {
	p1 := baseline.HideEvents(protocols.ABReceiver(), protocols.Del)
	q0 := baseline.HideEvents(protocols.NSSender(), protocols.Acc)
	seed := baseline.Seed{Rules: []baseline.SeedRule{
		{Name: "data", Producers: []spec.Event{"+d0", "+d1"}, Consumer: "-D"},
		{Name: "ack0", Producers: []spec.Event{"+A"}, Consumer: "-a0"},
		{Name: "ack1", Producers: []spec.Event{"+A"}, Consumer: "-a1"},
	}}
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Okumura(p1, q0, seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOkumuraGlobalCheck(b *testing.B) {
	p1 := baseline.HideEvents(protocols.ABReceiver(), protocols.Del)
	q0 := baseline.HideEvents(protocols.NSSender(), protocols.Acc)
	seed := baseline.Seed{Rules: []baseline.SeedRule{
		{Name: "data", Producers: []spec.Event{"+d0", "+d1"}, Consumer: "-D"},
		{Name: "ack0", Producers: []spec.Event{"+A"}, Consumer: "-a0"},
		{Name: "ack1", Producers: []spec.Event{"+A"}, Consumer: "-a1"},
	}}
	cand, err := baseline.Okumura(p1, q0, seed)
	if err != nil {
		b.Fatal(err)
	}
	bsym, svc := protocols.SymmetricB(), protocols.Service()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := compose.Pair(bsym, cand)
		if err := sat.Satisfies(sys, svc); err == nil {
			b.Fatal("global check unexpectedly passed")
		}
	}
}

func BenchmarkProjectionRelay(b *testing.B) {
	image := protocols.AtLeastOnceService()
	for i := 0; i < b.N; i++ {
		if err := baseline.CommonImage(protocols.NSSystem(), protocols.NSSystem(), image); err != nil {
			b.Fatal(err)
		}
		if _, err := baseline.Relay("R", []baseline.Mapping{
			{In: "+D", Out: "-D'"}, {In: "+A'", Out: "-A"},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate benchmarks: composition, satisfaction, normalization ---

func BenchmarkComposeABSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = protocols.ABSystem()
	}
}

func BenchmarkSatSafetyABSystem(b *testing.B) {
	sys, svc := protocols.ABSystem(), protocols.Service()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sat.Safety(sys, svc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSatProgressABSystem(b *testing.B) {
	sys, svc := protocols.ABSystem(), protocols.Service()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sat.Progress(sys, svc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalizeSymmetricB(b *testing.B) {
	env := protocols.SymmetricB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Normalize()
	}
}

func BenchmarkMinimizeSymmetricB(b *testing.B) {
	env := protocols.SymmetricB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = env.Minimize()
	}
}

// --- Deployment: eventually-reliable derivation and runtime throughput ---

func BenchmarkEventuallyReliableQuotient(b *testing.B) {
	svc, env := protocols.Service(), protocols.EventuallyReliableNSB()
	for i := 0; i < b.N; i++ {
		if _, err := core.Derive(svc, env, core.Options{OmitVacuous: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeThroughput(b *testing.B) {
	env := protocols.EventuallyReliableNSB()
	res, err := core.Derive(protocols.Service(), env, core.Options{OmitVacuous: true})
	if err != nil {
		b.Fatal(err)
	}
	conv, err := core.Prune(protocols.Service(), env, res.Converter)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rng := rand.New(rand.NewSource(1))
	ab := runtime.NewDuplex(0, rng)
	ns := runtime.NewDuplex(0, rng)
	delivered := make(chan []byte, 1024)
	go runtime.NSReceiver(ctx, ns, delivered)
	go func() {
		_ = runtime.Converter(ctx, conv, ab, ns, runtime.ABToNSPortMap(false))
	}()
	// One op sends a full d0/d1 sequence-bit cycle: each ABSender call
	// restarts at bit 0, and after an odd number of messages the converter
	// would treat the next d0 as a duplicate (re-acked, not delivered).
	payloads := [][]byte{[]byte("bench-payload-0"), []byte("bench-payload-1")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runtime.ABSender(ctx, payloads, ab) != 2 {
			b.Fatal("send failed")
		}
		<-delivered
		<-delivered
	}
}

func BenchmarkEngineWalkABSystem(b *testing.B) {
	sys := protocols.ABSystem()
	rng := rand.New(rand.NewSource(2))
	r := engine.New(sys, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Walk(1000)
	}
}

// --- Extension families: cross-generation and window conversions ---

// Converting between sequenced protocols of different moduli — the
// "several generations must coexist" mismatch of the paper's introduction.
func BenchmarkCrossSeqQuotient(b *testing.B) {
	for _, c := range []struct{ j, k int }{{2, 3}, {3, 2}, {3, 4}} {
		b.Run(fmt.Sprintf("%d-to-%d", c.j, c.k), func(b *testing.B) {
			env, err := protocols.CrossSeqB(c.j, c.k)
			if err != nil {
				b.Fatal(err)
			}
			svc := protocols.Service()
			b.ResetTimer()
			var states int
			for i := 0; i < b.N; i++ {
				res, err := core.Derive(svc, env, core.Options{OmitVacuous: true})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.FinalStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// Converting a go-back-N window sender to a one-at-a-time receiver: the
// converter must buffer and pace acknowledgements.
func BenchmarkWindowToNSQuotient(b *testing.B) {
	env, err := protocols.WindowToNSB(protocols.WindowConfig{Window: 2, Modulus: 3})
	if err != nil {
		b.Fatal(err)
	}
	svc := protocols.WindowService(2)
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		res, err := core.Derive(svc, env, core.Options{OmitVacuous: true})
		if err != nil {
			b.Fatal(err)
		}
		states = res.Stats.FinalStates
	}
	b.ReportMetric(float64(states), "states")
}

// --- Derivation engine: parallel interned safety phase ---
//
// The BenchmarkDerive* family exercises the engine knobs that
// Result.Stats.Metrics reports: worker scaling of the level-synchronous
// safety phase and the pair-set interning hit rate. The derived converter
// is bit-identical for every worker count (asserted by golden_test.go), so
// these compare pure engine cost. Worker scaling needs hardware
// parallelism: with GOMAXPROCS=1 all counts collapse to the sequential
// cost (the shared recycling pool keeps multi-worker overhead near zero);
// on a multi-core box the safety-µs metric drops as workers are added.

// BenchmarkDeriveWindowWorkers derives the window-3 go-back-N to
// one-at-a-time conversion — the widest-frontier workload in the
// protocol library (peak frontier ≈ 60 states) — at 1, 2, and 4 workers,
// reporting the safety-phase wall time and the interning hit rate.
func BenchmarkDeriveWindowWorkers(b *testing.B) {
	env, err := protocols.WindowToNSB(protocols.WindowConfig{Window: 3, Modulus: 4})
	if err != nil {
		b.Fatal(err)
	}
	svc := protocols.WindowService(3)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var safety time.Duration
			var m core.Metrics
			for i := 0; i < b.N; i++ {
				res, err := core.Derive(svc, env, core.Options{OmitVacuous: true, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				m = res.Stats.Metrics
				safety += m.SafetyWall
			}
			b.ReportMetric(float64(safety.Microseconds())/float64(b.N), "safety-µs")
			b.ReportMetric(100*m.InternHitRate(), "intern-hit-%")
			b.ReportMetric(float64(m.PeakFrontier), "peak-frontier")
		})
	}
}

// BenchmarkDeriveFigure18Workers runs the paper's largest derivation
// (Figure 18 transport conversion) across worker counts.
func BenchmarkDeriveFigure18Workers(b *testing.B) {
	svc, env := protocols.CST(), protocols.TransportB18()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var safety time.Duration
			for i := 0; i < b.N; i++ {
				res, err := core.Derive(svc, env, core.Options{OmitVacuous: true, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				safety += res.Stats.Metrics.SafetyWall
			}
			b.ReportMetric(float64(safety.Microseconds())/float64(b.N), "safety-µs")
		})
	}
}

// BenchmarkDeriveCancellation measures the overhead the context plumbing
// adds to an uncancelled derivation (checked once per frontier level).
func BenchmarkDeriveCancellation(b *testing.B) {
	env, err := protocols.WindowToNSB(protocols.WindowConfig{Window: 2, Modulus: 3})
	if err != nil {
		b.Fatal(err)
	}
	svc := protocols.WindowService(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < b.N; i++ {
		if _, err := core.DeriveContext(ctx, svc, env, core.Options{OmitVacuous: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Satisfaction over the 31k-state lossy window system: the substrate's
// largest verification instance.
func BenchmarkSatSafetyLossyWindow(b *testing.B) {
	sys, err := protocols.WindowSystem(protocols.WindowConfig{Window: 2, Modulus: 3}, true)
	if err != nil {
		b.Fatal(err)
	}
	svc := protocols.WindowService(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sat.Safety(sys, svc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations: design choices DESIGN.md calls out ---

// Keeping vs dropping vacuous states: maximality costs at most one extra
// state plus its transitions; OmitVacuous trades the maximality property
// for a tighter object.
func BenchmarkAblationVacuous(b *testing.B) {
	svc, env := protocols.Service(), protocols.ColocatedB()
	for _, omit := range []bool{false, true} {
		name := "keep"
		if omit {
			name = "omit"
		}
		b.Run(name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := core.Derive(svc, env, core.Options{OmitVacuous: omit})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Stats.FinalStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// Minimizing B (strong bisimulation) before deriving: reduces the tracked
// pair space when the composition has redundant states.
func BenchmarkAblationMinimizeFirst(b *testing.B) {
	svc := protocols.Service()
	b.Run("raw", func(b *testing.B) {
		env := protocols.ColocatedB()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Derive(svc, env, core.Options{OmitVacuous: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("minimized", func(b *testing.B) {
		env := protocols.ColocatedB().Minimize()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Derive(svc, env, core.Options{OmitVacuous: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// τ-compressing the environment before deriving: semantics-preserving
// (tested in internal/core) and measurably cheaper on rendezvous-heavy
// compositions.
func BenchmarkAblationCompressTau(b *testing.B) {
	svc := protocols.Service()
	b.Run("raw", func(b *testing.B) {
		env := protocols.SymmetricB()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = core.Derive(svc, env, core.Options{OmitVacuous: true, SafetyOnly: true})
		}
	})
	b.Run("compressed", func(b *testing.B) {
		env := protocols.SymmetricB().CompressTau()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = core.Derive(svc, env, core.Options{OmitVacuous: true, SafetyOnly: true})
		}
	})
}

// Robust derivation against k environment variants scales the tracked pair
// sets roughly linearly in k.
func BenchmarkAblationRobustVariants(b *testing.B) {
	svc := protocols.Service()
	for _, k := range []int{0, 1, 2} {
		envs := protocols.DeploymentEnvs(k)
		b.Run(fmt.Sprintf("variants=%d", len(envs)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DeriveRobust(svc, envs, core.Options{OmitVacuous: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The eventually-reliable model vs the plain fair-loss model: the state
// space doubles but the derived converter collapses to the canonical relay.
func BenchmarkAblationChannelModel(b *testing.B) {
	svc := protocols.Service()
	b.Run("fair-loss", func(b *testing.B) {
		env := protocols.ReliableNSB()
		var states int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Derive(svc, env, core.Options{OmitVacuous: true})
			if err != nil {
				b.Fatal(err)
			}
			states = res.Stats.FinalStates
		}
		b.ReportMetric(float64(states), "states")
	})
	b.Run("eventually-reliable", func(b *testing.B) {
		env := protocols.EventuallyReliableNSB()
		var states int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Derive(svc, env, core.Options{OmitVacuous: true})
			if err != nil {
				b.Fatal(err)
			}
			states = res.Stats.FinalStates
		}
		b.ReportMetric(float64(states), "states")
	})
}

// --- PR: fused index-space composition and the memoized progress phase ---
//
// Each specgen family runs through the three pipelines: eager string-keyed
// composition feeding Derive ("spec engine"), the fused integer index-space
// composition feeding DeriveEnv ("indexed engine"), and the demand-driven
// composition whose exploration the safety phase drives ("lazy engine"). The
// quotbench command records the same comparison as committed JSON
// (BENCH_pr3.json, BENCH_pr4.json); these benchmarks keep it visible to
// `go test -bench`.

func benchFamilySpecEngine(b *testing.B, f specgen.Family) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := compose.Many(f.Components...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Derive(f.Service, env, core.Options{OmitVacuous: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFamilyIndexedEngine(b *testing.B, f specgen.Family) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := compose.IndexedMany(f.Components...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.DeriveEnv(f.Service, env, core.Options{OmitVacuous: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFamilyLazyEngine(b *testing.B, f specgen.Family) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := compose.LazyMany(f.Components...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.DeriveEnv(f.Service, env, core.Options{OmitVacuous: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeriveChainSpecEngine(b *testing.B)     { benchFamilySpecEngine(b, specgen.Chain(5)) }
func BenchmarkDeriveChainIndexedEngine(b *testing.B)  { benchFamilyIndexedEngine(b, specgen.Chain(5)) }
func BenchmarkDeriveChainLazyEngine(b *testing.B)     { benchFamilyLazyEngine(b, specgen.Chain(5)) }
func BenchmarkDeriveChainDropSpecEngine(b *testing.B) { benchFamilySpecEngine(b, specgen.ChainDrop(4)) }
func BenchmarkDeriveChainDropIndexedEngine(b *testing.B) {
	benchFamilyIndexedEngine(b, specgen.ChainDrop(4))
}
func BenchmarkDeriveChainDropLazyEngine(b *testing.B) { benchFamilyLazyEngine(b, specgen.ChainDrop(4)) }

// Frontier instances (this PR's BenchFamilies tail): demand-driven engine
// only — the eager pipelines materialize the full product and belong under
// quotbench's -derivetimeout, not in a -benchtime 1x smoke.
func BenchmarkDeriveChainFrontierLazyEngine(b *testing.B) {
	benchFamilyLazyEngine(b, specgen.Chain(8))
}
func BenchmarkDeriveChainDropFrontierLazyEngine(b *testing.B) {
	benchFamilyLazyEngine(b, specgen.ChainDrop(7))
}
func BenchmarkDeriveRingFrontierLazyEngine(b *testing.B) {
	benchFamilyLazyEngine(b, specgen.Ring(6))
}

// BenchmarkDeriveAllocBudgetChain7 is the allocation-regression smoke: a
// chain(7) demand-driven derivation must stay under a pinned heap budget.
// The ceiling is ~1.5× the measured cost (chain(7) allocates ~61 MB
// end-to-end), so ordinary drift passes and a lost arena-reuse or
// growth-policy regression — the class of bug that once cost +190 MB on
// chain(9) — fails the benchsmoke gate instead of landing silently. The
// process-wide Sys check is a gross leak backstop; it is process-global
// (earlier benchmarks in the same run contribute), hence the slack.
func BenchmarkDeriveAllocBudgetChain7(b *testing.B) {
	const (
		allocCeiling = 96 << 20
		sysCeiling   = 2 << 30
	)
	f := specgen.Chain(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := compose.LazyMany(f.Components...)
		if err != nil {
			b.Fatal(err)
		}
		var before, after goruntime.MemStats
		goruntime.GC()
		goruntime.ReadMemStats(&before)
		if _, err := core.DeriveEnv(f.Service, env, core.Options{OmitVacuous: true}); err != nil {
			b.Fatal(err)
		}
		goruntime.ReadMemStats(&after)
		if got := after.TotalAlloc - before.TotalAlloc; got > allocCeiling {
			b.Fatalf("chain(7) derivation allocated %d MB, budget is %d MB",
				got>>20, allocCeiling>>20)
		}
		if after.Sys > sysCeiling {
			b.Fatalf("process Sys grew to %d MB, ceiling is %d MB", after.Sys>>20, sysCeiling>>20)
		}
	}
}

// Composition alone, eager fold vs fused index space. Ring components share
// events pairwise around a cycle, the worst case for the left fold's
// intermediate products.
func BenchmarkComposeRingEager(b *testing.B) {
	f := specgen.Ring(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compose.Many(f.Components...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComposeRingIndexed(b *testing.B) {
	f := specgen.Ring(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compose.IndexedMany(f.Components...); err != nil {
			b.Fatal(err)
		}
	}
}

// The fused composition at a size the eager fold cannot reach in reasonable
// time (ring(5) = 30720 composite states; the fold takes minutes).
func BenchmarkComposeRingIndexedLarge(b *testing.B) {
	f := specgen.Ring(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compose.IndexedMany(f.Components...); err != nil {
			b.Fatal(err)
		}
	}
}
